"""Kill → checkpoint → ``--resume`` bit-identity, at every layer.

The robustness contract: a rolling server interrupted mid-window and
resumed from its drain checkpoint serves, from the last banked window
boundary onward, allocations **bitwise equal** to an uninterrupted run.
Three layers pin it — the checkpoint store round trip, an in-process
server killed and rebuilt (the SIGTERM handler's exact call sequence),
and the real CLI process killed with SIGTERM and restarted with
``--resume``.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import scenarios
from repro.artifacts import ArtifactStore
from repro.errors import ConfigurationError
from repro.serve import (
    HttpClient,
    RoutingServer,
    ServerConfig,
    SessionCheckpointSpec,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve.checkpoint import resume_results

SCENARIO = "serve-smoke"
WINDOW = 4

REPO_ROOT = Path(__file__).resolve().parents[1]


def _rows(n: int) -> np.ndarray:
    scenario = scenarios.get(SCENARIO)
    return scenarios.trace(scenario.trace, scenario.market).demand[:n]


def _assert_results_identical(resumed, full):
    assert len(resumed) == len(full)
    for r, f in zip(resumed, full):
        assert r.start == f.start
        assert np.array_equal(r.loads, f.loads)
        assert np.array_equal(r.paid_prices, f.paid_prices)


# -- the checkpoint store ------------------------------------------------------


def test_checkpoint_round_trips_banked_windows_only(tmp_path):
    store = ArtifactStore(tmp_path)
    spec = SessionCheckpointSpec(scenario=SCENARIO, window_steps=WINDOW)
    roller = scenarios.open_rolling_session(
        scenarios.get(SCENARIO), window_steps=WINDOW, max_windows=3
    )

    # Nothing banked yet: saving is a no-op, loading is a miss.
    assert save_checkpoint(store, spec, roller) is None
    assert load_checkpoint(store, spec) == ()

    rows = _rows(10)
    roller.feed(rows)  # 2 banked windows + 2 steps into the third
    path = save_checkpoint(store, spec, roller)
    assert path is not None and path.exists()
    assert roller.checkpoint_state() == {"windows_completed": 2, "steps_banked": 8}

    banked = load_checkpoint(store, spec)
    _assert_results_identical(banked, roller.results())

    # The spec is the address: any other configuration must miss.
    assert load_checkpoint(store, SessionCheckpointSpec(SCENARIO, WINDOW + 1)) == ()
    assert (
        load_checkpoint(store, SessionCheckpointSpec(SCENARIO, WINDOW, shard_index=1, n_shards=2))
        == ()
    )

    # resume_results gates on the resume flag and the store's presence.
    assert resume_results(store, spec, resume=False) == ()
    assert resume_results(None, spec, resume=True) == ()
    _assert_results_identical(resume_results(store, spec, resume=True), banked)

    # Saving again after more progress overwrites with the full history.
    roller.feed(_rows(12)[10:])
    save_checkpoint(store, spec, roller)
    assert len(load_checkpoint(store, spec)) == 3


def test_resume_validation_rejects_mismatched_checkpoints():
    scenario = scenarios.get(SCENARIO)
    roller = scenarios.open_rolling_session(scenario, window_steps=WINDOW, max_windows=2)
    roller.feed(_rows(2 * WINDOW))
    banked = roller.results()

    with pytest.raises(ConfigurationError, match="leave nothing"):
        scenarios.open_rolling_session(
            scenario, window_steps=WINDOW, max_windows=2, resume_results=banked
        )
    with pytest.raises(ConfigurationError, match="wrong checkpoint"):
        scenarios.open_rolling_session(
            scenario, window_steps=WINDOW + 1, max_windows=2, resume_results=banked[:1]
        )


# -- in-process kill + resume (the SIGTERM handler's call sequence) ------------


def test_server_killed_mid_window_resumes_bit_identically(tmp_path):
    n_total = 3 * WINDOW
    cut = 6  # mid second window: 1 banked window + 2 live steps lost
    rows = _rows(n_total)
    store = ArtifactStore(tmp_path)
    spec = SessionCheckpointSpec(scenario=SCENARIO, window_steps=WINDOW)

    async def serve_steps(session, demand_rows, *, full=True):
        server = RoutingServer(
            session,
            ServerConfig(host="127.0.0.1", port=0, window_ms=2.0, scenario=SCENARIO),
        )
        await server.start()
        try:
            async with HttpClient("127.0.0.1", server.port) as client:
                bodies = [await client.route(row.tolist(), full=full) for row in demand_rows]
        finally:
            drained = await server.stop(drain=True)
        return bodies, drained

    def run(coro):
        return asyncio.run(coro)

    # First life: serve 6 steps, drain, checkpoint — the CLI's SIGTERM path.
    first = scenarios.open_rolling_session(
        scenarios.get(SCENARIO), window_steps=WINDOW, max_windows=3
    )
    _, drained = run(serve_steps(first, rows[:cut]))
    assert drained
    save_checkpoint(store, spec, first)
    assert first.checkpoint_state() == {"windows_completed": 1, "steps_banked": WINDOW}

    # Second life: resume from the checkpoint, serve from the boundary.
    banked = resume_results(store, spec, resume=True)
    resumed = scenarios.open_rolling_session(
        scenarios.get(SCENARIO), window_steps=WINDOW, max_windows=3, resume_results=banked
    )
    assert resumed.steps_fed == WINDOW  # steps 4..5 are re-served, not skipped
    bodies, _ = run(serve_steps(resumed, rows[WINDOW:]))
    assert [b["step"] for b in bodies] == list(range(WINDOW, n_total))

    # The uninterrupted control run.
    control = scenarios.open_rolling_session(
        scenarios.get(SCENARIO), window_steps=WINDOW, max_windows=3
    )
    control_allocations = control.feed(rows)

    # Every banked window — including the resumed first — is bitwise
    # equal, and so is each served allocation matrix past the boundary.
    _assert_results_identical(resumed.results(), control.results())
    for body in bodies:
        assert np.array_equal(
            np.asarray(body["allocation"]["matrix"]),
            control_allocations[body["step"]],
        )


# -- the real CLI: SIGTERM, then --resume --------------------------------------


def _spawn_serve(store_dir: Path, *extra: str) -> tuple[subprocess.Popen, int, str]:
    """Start ``repro serve`` on an ephemeral port.

    Returns ``(proc, port, startup_banner)`` — the banner is whatever
    the CLI printed to stderr up to and including the port line (the
    ``--resume`` acknowledgement precedes it).
    """
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro.cli", "serve",
            "--scenario", SCENARIO, "--rolling-window", str(WINDOW),
            "--port", "0", "--artifacts", str(store_dir), *extra,
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 60
    banner = []
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line and proc.poll() is not None:
            break
        banner.append(line)
        match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        if match:
            return proc, int(match.group(1)), "".join(banner)
    proc.kill()
    raise AssertionError(f"server never printed its port; stderr: {''.join(banner)}")


def _terminate(proc: subprocess.Popen) -> str:
    proc.send_signal(signal.SIGTERM)
    try:
        _, stderr = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise
    assert proc.returncode == 0
    return stderr


async def _route_all(port: int, demand_rows) -> list[dict]:
    async with HttpClient("127.0.0.1", port, max_retries=5, backoff_base_s=0.05) as client:
        return [await client.route(row.tolist(), full=True) for row in demand_rows]


def test_cli_sigterm_checkpoint_then_resume_is_bit_identical(tmp_path):
    n_total = 3 * WINDOW
    cut = 6
    rows = _rows(n_total)

    # First life: route 6 steps (mid window 2), SIGTERM → drain + checkpoint.
    proc, port, _ = _spawn_serve(tmp_path)
    try:
        first_bodies = asyncio.run(_route_all(port, rows[:cut]))
    except BaseException:
        proc.kill()
        raise
    stderr = _terminate(proc)
    assert [b["step"] for b in first_bodies] == list(range(cut))
    assert "checkpointed 1 window(s)" in stderr
    assert re.search(rf"\b{WINDOW} steps\b", stderr)

    # Second life: --resume re-serves from the banked boundary.
    proc, port, banner = _spawn_serve(tmp_path, "--resume")
    try:
        resumed_bodies = asyncio.run(_route_all(port, rows[WINDOW:]))
    except BaseException:
        proc.kill()
        raise
    _terminate(proc)
    assert "resumed from checkpoint (1 banked window(s)" in banner
    assert [b["step"] for b in resumed_bodies] == list(range(WINDOW, n_total))

    # Control: the same steps through an uninterrupted offline chain.
    control = scenarios.open_rolling_session(scenarios.get(SCENARIO), window_steps=WINDOW)
    control_allocations = control.feed(rows)
    for body in first_bodies + resumed_bodies:
        assert np.array_equal(
            np.asarray(body["allocation"]["matrix"]),
            control_allocations[body["step"]],
        )
