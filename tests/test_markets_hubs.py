"""Tests for repro.markets.hubs and repro.markets.rto."""

import pytest

from repro.errors import UnknownHubError
from repro.markets.hubs import (
    ALL_HUB_CODES,
    CLUSTER_HUB_CODES,
    HUBS,
    all_hubs,
    cluster_hubs,
    get_hub,
    hub_distance_km,
)
from repro.markets.rto import RTO, RTO_INFO


class TestRoster:
    def test_twenty_nine_hubs(self):
        # §3: "We use price data for 30 locations" = 29 hourly hubs
        # (this registry) + the daily-only Northwest hub.
        assert len(ALL_HUB_CODES) == 29
        assert len(HUBS) == 29

    def test_all_six_rtos_present(self):
        rtos = {h.rto for h in all_hubs()}
        assert rtos == set(RTO)

    def test_nine_cluster_hubs_with_fig19_labels(self):
        labels = [get_hub(c).cluster_label for c in CLUSTER_HUB_CODES]
        assert labels == ["CA1", "CA2", "MA", "NY", "IL", "VA", "NJ", "TX1", "TX2"]

    def test_cluster_hubs_order(self):
        assert [h.code for h in cluster_hubs()] == list(CLUSTER_HUB_CODES)

    def test_non_cluster_hubs_have_no_label(self):
        for hub in all_hubs():
            if hub.code not in CLUSTER_HUB_CODES:
                assert hub.cluster_label is None

    def test_fig6_published_stats_embedded(self):
        assert get_hub("CHI").mean_price == pytest.approx(40.6)
        assert get_hub("NYC").mean_price == pytest.approx(77.9)
        assert get_hub("NP15").price_sigma == pytest.approx(34.2)

    def test_nyc_most_expensive_of_fig6_six(self):
        six = ["CHI", "CINERGY", "NP15", "DOM", "MA-BOS", "NYC"]
        means = {c: get_hub(c).mean_price for c in six}
        assert max(means, key=means.get) == "NYC"
        assert min(means, key=means.get) == "CHI"

    def test_positive_prices_and_sigmas(self):
        for hub in all_hubs():
            assert hub.mean_price > 0
            assert hub.price_sigma > 0
            assert hub.spikiness > 0


class TestLookup:
    def test_unknown_hub_raises(self):
        with pytest.raises(UnknownHubError):
            get_hub("NOPE")

    def test_distance_accepts_codes_and_hubs(self):
        d1 = hub_distance_km("NP15", "SP15")
        d2 = hub_distance_km(get_hub("NP15"), get_hub("SP15"))
        assert d1 == d2
        assert 400 < d1 < 700  # Palo Alto - LA

    def test_distance_zero_to_self(self):
        assert hub_distance_km("CHI", "CHI") == 0.0


class TestRTOInfo:
    def test_every_rto_has_info(self):
        assert set(RTO_INFO) == set(RTO)

    def test_caiso_most_cohesive(self):
        # §3.2: LA/Palo Alto at 0.94 — CAISO hubs nearly lockstep.
        assert RTO_INFO[RTO.CAISO].cohesion == min(i.cohesion for i in RTO_INFO.values())

    def test_texas_strongest_gas_coupling(self):
        # §2.2: 86% of Texas generation was gas+coal in 2007.
        assert RTO_INFO[RTO.ERCOT].gas_coupling == max(i.gas_coupling for i in RTO_INFO.values())
