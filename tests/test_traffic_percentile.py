"""Tests for repro.traffic.percentile (95/5 billing)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic.percentile import Bandwidth95Tracker, billing_percentile, percentile_95


class TestBillingPercentile:
    def test_simple_percentile(self):
        # "lower" order statistic: index floor(0.95 * 99) = 94, not the
        # interpolated 94.05 the default linear method would report.
        samples = np.tile(np.arange(100.0)[:, None], (1, 2))
        p95 = percentile_95(samples)
        assert p95 == pytest.approx([94.0, 94.0])

    def test_basis_is_an_observed_sample(self):
        # The billing convention reads a measured sample, never a value
        # interpolated between two samples the meter did not record.
        rng = np.random.default_rng(7)
        samples = rng.exponential(100.0, size=(977, 3))  # awkward n on purpose
        basis = percentile_95(samples)
        for j in range(samples.shape[1]):
            assert basis[j] in samples[:, j]

    def test_lower_basis_never_exceeds_linear(self):
        rng = np.random.default_rng(3)
        samples = rng.normal(50.0, 10.0, size=(500, 4))
        assert np.all(percentile_95(samples) <= np.percentile(samples, 95.0, axis=0))

    def test_top_five_percent_free(self):
        # Bursting in <5% of intervals must not move the bill basis.
        base = np.full((100, 1), 10.0)
        burst = base.copy()
        burst[:4] = 1000.0  # 4% of intervals
        assert percentile_95(burst)[0] == pytest.approx(percentile_95(base)[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            billing_percentile(np.ones(5))
        with pytest.raises(ConfigurationError):
            billing_percentile(np.ones((5, 2)), percentile=0.0)


class TestTracker:
    def test_limits_are_caps(self):
        tracker = Bandwidth95Tracker(np.array([10.0, 20.0]), n_steps=100)
        assert np.allclose(tracker.limits(), [10.0, 20.0])

    def test_burst_counting(self):
        tracker = Bandwidth95Tracker(np.array([10.0, 20.0]), n_steps=100)
        tracker.record(np.array([11.0, 5.0]))
        tracker.record(np.array([9.0, 25.0]))
        tracker.record(np.array([10.0, 20.0]))  # at cap: not a burst
        assert list(tracker.bursts_used) == [1, 1]

    def test_within_budget(self):
        tracker = Bandwidth95Tracker(np.array([10.0]), n_steps=100)
        for _ in range(5):
            tracker.record(np.array([11.0]))
        assert tracker.within_billing_budget()
        tracker.record(np.array([11.0]))
        assert not tracker.within_billing_budget()

    def test_free_budget_size(self):
        tracker = Bandwidth95Tracker(np.array([10.0]), n_steps=1000)
        assert tracker.free_budget == 50

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Bandwidth95Tracker(np.array([-1.0]), 10)
        with pytest.raises(ConfigurationError):
            Bandwidth95Tracker(np.array([1.0]), 0)
        with pytest.raises(ConfigurationError):
            Bandwidth95Tracker(np.ones((2, 2)), 10)
        tracker = Bandwidth95Tracker(np.array([1.0]), 10)
        with pytest.raises(ConfigurationError):
            tracker.record(np.array([1.0, 2.0]))

    def test_caps_consistent_with_billing_basis(self):
        # A tracker capped at the order-statistic basis and replaying the
        # very samples that defined it counts exactly the strictly-greater
        # samples as bursts (the basis sample itself sits *at* cap, never
        # above it — only true now that the basis is an observed value),
        # and for a period divisible by 20 that count fills the free 5%
        # budget exactly, leaving the bill unchanged.
        rng = np.random.default_rng(11)
        loads = rng.exponential(100.0, size=(1000, 5))
        caps = percentile_95(loads)
        tracker = Bandwidth95Tracker(caps, n_steps=loads.shape[0])
        tracker.record_batch(loads)
        expected = np.sum(loads > caps[None, :], axis=0)
        assert np.array_equal(tracker.bursts_used, expected)
        assert np.all(tracker.bursts_used <= tracker.free_budget)
