"""Tests for repro.traffic.percentile (95/5 billing)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic.percentile import Bandwidth95Tracker, billing_percentile, percentile_95


class TestBillingPercentile:
    def test_simple_percentile(self):
        samples = np.tile(np.arange(100.0)[:, None], (1, 2))
        p95 = percentile_95(samples)
        assert p95 == pytest.approx([94.05, 94.05])

    def test_top_five_percent_free(self):
        # Bursting in <5% of intervals must not move the bill basis.
        base = np.full((100, 1), 10.0)
        burst = base.copy()
        burst[:4] = 1000.0  # 4% of intervals
        assert percentile_95(burst)[0] == pytest.approx(percentile_95(base)[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            billing_percentile(np.ones(5))
        with pytest.raises(ConfigurationError):
            billing_percentile(np.ones((5, 2)), percentile=0.0)


class TestTracker:
    def test_limits_are_caps(self):
        tracker = Bandwidth95Tracker(np.array([10.0, 20.0]), n_steps=100)
        assert np.allclose(tracker.limits(), [10.0, 20.0])

    def test_burst_counting(self):
        tracker = Bandwidth95Tracker(np.array([10.0, 20.0]), n_steps=100)
        tracker.record(np.array([11.0, 5.0]))
        tracker.record(np.array([9.0, 25.0]))
        tracker.record(np.array([10.0, 20.0]))  # at cap: not a burst
        assert list(tracker.bursts_used) == [1, 1]

    def test_within_budget(self):
        tracker = Bandwidth95Tracker(np.array([10.0]), n_steps=100)
        for _ in range(5):
            tracker.record(np.array([11.0]))
        assert tracker.within_billing_budget()
        tracker.record(np.array([11.0]))
        assert not tracker.within_billing_budget()

    def test_free_budget_size(self):
        tracker = Bandwidth95Tracker(np.array([10.0]), n_steps=1000)
        assert tracker.free_budget == 50

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Bandwidth95Tracker(np.array([-1.0]), 10)
        with pytest.raises(ConfigurationError):
            Bandwidth95Tracker(np.array([1.0]), 0)
        with pytest.raises(ConfigurationError):
            Bandwidth95Tracker(np.ones((2, 2)), 10)
        tracker = Bandwidth95Tracker(np.array([1.0]), 10)
        with pytest.raises(ConfigurationError):
            tracker.record(np.array([1.0, 2.0]))
