"""Kernel selection, threaded chunk routing, and the float32 mode.

The engine's raw-speed knobs must never move a result: the numba
kernels (when the optional dependency is installed) and threaded chunk
routing are gated on *bitwise* agreement with the default serial numpy
engine across router kinds and cap modes, and the opt-in float32 mode
is gated on documented tolerances rather than bit-identity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.errors import ConfigurationError
from repro.routing.akamai import BaselineProximityRouter
from repro.routing.base import RoutingProblem
from repro.routing.joint import JointOptimizationRouter
from repro.routing.price import PriceConsciousRouter
from repro.routing.static import StaticSingleHubRouter
from repro.scenarios.spec import RouterSpec, Scenario
from repro.sim import engine as engine_mod
from repro.sim import profiling
from repro.sim.engine import SimulationOptions, simulate
from repro.traffic import akamai_like_deployment

# ---------------------------------------------------------------------------
# Environment-variable parsing


def test_default_kernel_is_numpy(monkeypatch):
    monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
    assert kernels.kernel_name() == "numpy"
    assert not kernels.use_numba()


def test_kernel_env_parses_known_values(monkeypatch):
    monkeypatch.setenv(kernels.KERNEL_ENV, "  NUMBA ")
    assert kernels.kernel_name() == "numba"
    monkeypatch.setenv(kernels.KERNEL_ENV, "numpy")
    assert kernels.kernel_name() == "numpy"
    monkeypatch.setenv(kernels.KERNEL_ENV, "")
    assert kernels.kernel_name() == "numpy"


def test_unknown_kernel_rejected(monkeypatch):
    monkeypatch.setenv(kernels.KERNEL_ENV, "fortran")
    with pytest.raises(ConfigurationError, match="REPRO_ENGINE_KERNEL"):
        kernels.kernel_name()


def test_numba_request_without_numba_falls_back(monkeypatch):
    """Requesting numba on a box without it must serve numpy, not raise."""
    monkeypatch.setenv(kernels.KERNEL_ENV, "numba")
    if kernels.numba_available():
        assert kernels.use_numba()
    else:
        assert not kernels.use_numba()
    assert kernels.kernel_name() == "numba"  # the request itself is valid


def test_threads_env_parsing(monkeypatch):
    monkeypatch.delenv(kernels.THREADS_ENV, raising=False)
    assert kernels.engine_threads() == 0
    monkeypatch.setenv(kernels.THREADS_ENV, " 4 ")
    assert kernels.engine_threads() == 4
    monkeypatch.setenv(kernels.THREADS_ENV, "")
    assert kernels.engine_threads() == 0


@pytest.mark.parametrize("raw", ["two", "1.5", "-1"])
def test_threads_env_rejects_bad_values(monkeypatch, raw):
    monkeypatch.setenv(kernels.THREADS_ENV, raw)
    with pytest.raises(ConfigurationError, match="REPRO_ENGINE_THREADS"):
        kernels.engine_threads()


# ---------------------------------------------------------------------------
# Bitwise identity of the speed knobs

ROUTERS = ["baseline", "price", "joint", "static"]


def _build_router(kind: str, problem):
    if kind == "baseline":
        return BaselineProximityRouter(problem)
    if kind == "price":
        return PriceConsciousRouter(problem, distance_threshold_km=1500.0)
    if kind == "joint":
        return JointOptimizationRouter(problem)
    return StaticSingleHubRouter(problem, 0)


def _snapshot(result):
    return (
        result.loads.tobytes(),
        result.paid_prices.tobytes(),
        result.distance_profile.histogram.tobytes(),
    )


@pytest.fixture(scope="module")
def references(short_trace, small_dataset, problem):
    """Default-engine snapshots for every (router, caps) combination."""
    out = {}
    for kind in ROUTERS:
        router = _build_router(kind, problem)
        plain = simulate(short_trace, small_dataset, problem, router)
        caps = plain.percentiles_95() * 0.9
        capped = simulate(
            short_trace,
            small_dataset,
            problem,
            router,
            SimulationOptions(bandwidth_caps=caps),
        )
        out[kind] = {"caps": caps, None: _snapshot(plain), "95_5": _snapshot(capped)}
    return out


@pytest.mark.parametrize("mode", [None, "95_5"])
@pytest.mark.parametrize("kind", ROUTERS)
def test_numba_kernel_bitwise_identical(
    monkeypatch, short_trace, small_dataset, problem, references, kind, mode
):
    if not kernels.numba_available():
        pytest.skip("numba not installed; CI's perf leg exercises this")
    monkeypatch.setenv(kernels.KERNEL_ENV, "numba")
    options = SimulationOptions(bandwidth_caps=references[kind]["caps"]) if mode else None
    result = simulate(short_trace, small_dataset, problem, _build_router(kind, problem), options)
    assert _snapshot(result) == references[kind][mode]


@pytest.mark.parametrize("mode", [None, "95_5"])
@pytest.mark.parametrize("kind", ROUTERS)
def test_threaded_chunks_bitwise_identical(
    monkeypatch, short_trace, small_dataset, problem, references, kind, mode
):
    # Shrink chunks so the two-day trace spans several of them; the
    # serial reference uses the *same* chunking because chunk size
    # legitimately regroups the float reductions. Threading must then
    # change nothing: chunks route concurrently but reduce in order.
    monkeypatch.setattr(engine_mod, "BATCH_CHUNK_MIB", 0.25)
    router = _build_router(kind, problem)
    options = SimulationOptions(bandwidth_caps=references[kind]["caps"]) if mode else None
    serial = simulate(short_trace, small_dataset, problem, router, options)
    monkeypatch.setenv(kernels.THREADS_ENV, "3")
    threaded = simulate(short_trace, small_dataset, problem, router, options)
    assert _snapshot(threaded) == _snapshot(serial)


def test_thread_count_one_stays_serial(monkeypatch, short_trace, small_dataset, problem):
    monkeypatch.setenv(kernels.THREADS_ENV, "1")
    router = _build_router("price", problem)
    result = simulate(short_trace, small_dataset, problem, router)
    assert np.isfinite(result.loads).all()


# ---------------------------------------------------------------------------
# Float32 engine mode


def test_problem_rejects_unknown_dtype():
    with pytest.raises(ConfigurationError, match="dtype"):
        RoutingProblem(akamai_like_deployment(), dtype="float16")


def test_float32_problem_exposes_engine_dtype(problem):
    p32 = RoutingProblem(akamai_like_deployment(), dtype="float32")
    assert p32.dtype == np.float32
    assert p32.capacities.dtype == np.float32
    assert problem.dtype == np.float64
    # The float64 capacities view must be bitwise the deployment's.
    assert problem.capacities.tobytes() == problem.deployment.capacities.tobytes()


@pytest.mark.parametrize("kind", ["baseline", "price", "joint"])
def test_float32_mode_within_tolerance(short_trace, small_dataset, problem, kind):
    """Float32 runs end to end and lands within documented tolerances."""
    p32 = RoutingProblem(akamai_like_deployment(), dtype="float32")
    r64 = simulate(short_trace, small_dataset, problem, _build_router(kind, problem))
    r32 = simulate(short_trace, small_dataset, p32, _build_router(kind, p32))
    scale = float(np.max(r64.loads))
    assert float(np.max(np.abs(r32.loads - r64.loads))) / scale < 1e-4
    cost64 = float((r64.loads * r64.paid_prices).sum())
    cost32 = float((r32.loads * r32.paid_prices).sum())
    assert abs(cost32 - cost64) / abs(cost64) < 1e-6
    # Demand conservation holds exactly in aggregate terms.
    np.testing.assert_allclose(
        r32.loads.sum(axis=1), r64.loads.sum(axis=1), rtol=1e-5, atol=1e-6
    )


def test_float32_with_caps(short_trace, small_dataset, problem):
    p32 = RoutingProblem(akamai_like_deployment(), dtype="float32")
    r64 = simulate(short_trace, small_dataset, problem, JointOptimizationRouter(problem))
    caps = r64.percentiles_95() * 0.9
    opts = SimulationOptions(bandwidth_caps=caps)
    capped64 = simulate(
        short_trace, small_dataset, problem, JointOptimizationRouter(problem), opts
    )
    capped32 = simulate(short_trace, small_dataset, p32, JointOptimizationRouter(p32), opts)
    scale = float(np.max(capped64.loads))
    assert float(np.max(np.abs(capped32.loads - capped64.loads))) / scale < 1e-4


def test_scenario_engine_dtype_validation():
    with pytest.raises(ConfigurationError, match="engine_dtype"):
        Scenario(name="bad", engine_dtype="float16")


def test_scenario_engine_dtype_default_omitted_from_canonical():
    """The default keeps pre-existing artifact hashes byte-identical."""
    from repro.artifacts.codec import canonical, spec_key

    default = Scenario(name="s", router=RouterSpec.of("price", distance_threshold_km=1500.0))
    explicit = Scenario(
        name="s",
        router=RouterSpec.of("price", distance_threshold_km=1500.0),
        engine_dtype="float32",
    )
    assert "engine_dtype" not in canonical(default)
    assert "engine_dtype" in canonical(explicit)
    assert spec_key(default) != spec_key(explicit)


# ---------------------------------------------------------------------------
# Profiling harness


def test_profiling_disabled_by_default():
    assert not profiling.enabled()
    with profiling.phase("routing"):
        pass  # must be a no-op, not an error
    assert not profiling.enabled()


def test_profiled_collects_engine_phases(short_trace, small_dataset, problem):
    router = _build_router("joint", problem)
    with profiling.profiled() as phases:
        simulate(short_trace, small_dataset, problem, router)
    assert profiling.enabled() is False
    for name in ("precompute", "routing", "reduce", "finalize"):
        assert name in phases, name
        assert phases[name] >= 0.0
    assert set(phases) <= set(profiling.PHASES)


def test_profiled_blocks_nest():
    with profiling.profiled() as outer:
        with profiling.profiled() as inner:
            with profiling.phase("routing"):
                pass
        with profiling.phase("reduce"):
            pass
    assert "routing" in outer and "routing" in inner
    assert "reduce" in outer and "reduce" not in inner


def test_greedy_repair_nested_inside_routing(short_trace, small_dataset, problem):
    """When the greedy spill runs, its time is a subset of routing."""
    router = _build_router("joint", problem)
    base = simulate(short_trace, small_dataset, problem, router)
    caps = base.percentiles_95() * 0.9
    with profiling.profiled() as phases:
        simulate(
            short_trace,
            small_dataset,
            problem,
            router,
            SimulationOptions(bandwidth_caps=caps),
        )
    if "greedy_repair" in phases:
        assert phases["greedy_repair"] <= phases["routing"] + 1e-6


def test_profile_cases_structure():
    report = profiling.profile_cases(days=2)
    assert set(report) == {
        "baseline_proximity",
        "price_unconstrained",
        "joint_soft_objective",
        "joint_followed_95_5",
    }
    for phases in report.values():
        assert phases["total"] > 0.0
        assert "routing" in phases
