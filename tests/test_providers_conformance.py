"""Provider conformance: every registered price source, end to end.

Three guarantees ride here:

1. **Hash stability.** Default-provider scenarios and figure specs keep
   the content addresses they had before the provider layer existed
   (pinned literal digests), so no golden or artifact cache is
   invalidated by the refactor.
2. **Conformance.** Every provider preset drives the full pipeline —
   scenario run, sweep point metrics, aggregation — and produces
   finite, sane numbers (the CI provider-conformance job runs this
   file).
3. **Round trips.** A replayed simulation published to the artifact
   store reloads bit-identical, and a parallel sweep is byte-identical
   to a serial one.
"""

import json

import numpy as np
import pytest

from repro import artifacts, scenarios, sweeps
from repro.artifacts.codec import spec_key
from repro.experiments.orchestrator import FigureSpec
from repro.markets.providers import SYNTHETIC, ProviderSpec, preset, preset_names
from repro.sweeps.metrics import point_metrics
from repro.energy.params import OPTIMISTIC_FUTURE


def smoke_scenario(provider_name: str):
    base = sweeps.get("provider-grid").base
    return base.derive(provider=preset(provider_name).spec)


class TestHashStability:
    """Pre-provider digests, recorded before this layer was added."""

    PAPER_DEFAULT = "766c992fbd34c91a8233bfb4dd34450087be4a4f37cc14ad7db24999c04522b4"
    PAPER_RUN_KEY = "deb48763a8a151fb46da85f00d6b1c4d20796e521f1126a54d829a738c7ac34c"
    FIG06 = "2db4a75353eb7155b807b1d7f9a24488dcf183bbbfd29c05e151d97b3f11310e"
    FIG15_SEED3 = "a370b5b646068320181dff7c6f6e78421f502b323043f05e6be950bb4e286392"
    SMOKE_GRID = "07b60839d965ab464725ce20f5d3e6bf3dce99a12994093ad7306dda466a5bea"

    def test_scenario_keys_unchanged(self):
        assert spec_key(scenarios.get("paper-default")) == self.PAPER_DEFAULT
        anonymous = scenarios.get("paper-default").derive(name="", description="")
        assert spec_key(anonymous) == self.PAPER_RUN_KEY

    def test_figure_spec_keys_unchanged(self):
        assert spec_key(FigureSpec("fig06")) == self.FIG06
        assert spec_key(FigureSpec("fig15", 3)) == self.FIG15_SEED3

    def test_sweep_keys_unchanged(self):
        assert spec_key(sweeps.get("smoke-grid")) == self.SMOKE_GRID

    def test_explicit_default_provider_hashes_like_omitted(self):
        scenario = scenarios.get("paper-default")
        assert spec_key(scenario.derive(provider=SYNTHETIC)) == spec_key(scenario)
        assert spec_key(FigureSpec("fig06", None, None)) == spec_key(FigureSpec("fig06"))

    def test_non_default_provider_changes_the_key(self):
        scenario = scenarios.get("paper-default")
        spiky = scenario.derive(provider=preset("spiky-markets").spec)
        assert spec_key(spiky) != spec_key(scenario)
        assert spec_key(
            FigureSpec("fig06", None, preset("spiky-markets").spec)
        ) != spec_key(FigureSpec("fig06"))


class TestConformance:
    @pytest.mark.parametrize("name", sorted(preset_names()))
    def test_preset_runs_end_to_end(self, name):
        scenario = smoke_scenario(name)
        result = scenarios.run(scenario)
        assert result.n_steps == scenario.trace.n_steps
        assert np.isfinite(result.loads).all()
        assert np.isfinite(result.paid_prices).all()
        metrics = point_metrics(scenario, OPTIMISTIC_FUTURE)
        assert all(np.isfinite(v) for v in metrics.values())
        assert metrics["baseline_cost_usd"] > 0

    def test_provider_families_registered(self):
        for name in ("replay-smoke", "replay-stress", "spiky-markets", "decorrelated-rtos"):
            scenario = scenarios.get(name)
            assert scenario.provider != SYNTHETIC
        assert "provider-grid" in sweeps.names()

    def test_replay_family_runs(self):
        result = scenarios.run(scenarios.get("replay-smoke"))
        assert result.n_steps == 3 * 288
        assert np.isfinite(result.loads).all()

    def test_providers_change_the_prices_paid(self):
        from repro.markets.model import PRICE_FLOOR

        base = scenarios.run(smoke_scenario("synthetic"))
        scaled = scenarios.run(
            smoke_scenario("synthetic").derive(
                provider=ProviderSpec.of("perturbed", scale=2.0)
            )
        )
        # Doubling can push deeply negative hours into the price floor;
        # everywhere the floor cannot bind, the paid price doubles.
        unclamped = base.paid_prices >= PRICE_FLOOR / 2.0
        assert unclamped.any()
        assert np.allclose(
            scaled.paid_prices[unclamped], 2.0 * base.paid_prices[unclamped]
        )


class TestProviderOverride:
    def test_override_rewrites_default_provider_only(self):
        spiky = preset("spiky-markets").spec
        explicit = scenarios.get("replay-smoke")
        with scenarios.provider_override(spiky):
            assert scenarios.active_provider() == spiky
            # Explicit providers win over the override.
            assert scenarios.run(explicit).paid_prices.shape[0] == 3 * 288
        assert scenarios.active_provider() == SYNTHETIC

    def test_override_results_match_explicit_derivation(self):
        spiky = preset("spiky-markets").spec
        base = smoke_scenario("synthetic")
        with scenarios.provider_override(spiky):
            overridden = scenarios.run(base)
        explicit = scenarios.run(base.derive(provider=spiky))
        assert overridden.paid_prices.tobytes() == explicit.paid_prices.tobytes()

    def test_none_override_is_a_noop(self):
        with scenarios.provider_override(None):
            assert scenarios.active_provider() == SYNTHETIC


class TestExecutorBucketing:
    def test_provider_axis_fans_out_across_buckets(self):
        # One market under five providers is five data sets: the pool
        # must see five buckets, not one silently-serial group.
        from repro.sweeps.executor import group_points
        from repro.sweeps.spec import expand

        points = expand(sweeps.get("provider-grid"))
        groups = group_points(points)
        assert len(groups) == 5
        for group in groups:
            providers = {p.scenario.provider for p in group}
            assert len(providers) == 1


class TestSpecNormalisation:
    def test_explicit_defaults_hash_like_sparse_form(self):
        sparse = ProviderSpec.of("csv-replay", path="x.csv")
        dense = ProviderSpec.of(
            "csv-replay", path="x.csv", gap_policy="interpolate", utc_offset_hours=0
        )
        assert sparse == dense
        assert spec_key(sparse) == spec_key(dense)

    def test_provider_instance_spec_matches_preset(self):
        from repro.markets.providers import build_provider

        for name in preset_names():
            assert build_provider(preset(name).spec).spec == preset(name).spec


class TestRoundTrips:
    def test_replay_simulation_store_round_trip_is_bit_identical(self, tmp_path):
        scenario = scenarios.get("replay-smoke").derive(name="", description="")
        artifacts.configure(tmp_path / "store")
        scenarios.clear_caches()
        try:
            first = scenarios.run(scenario)
            scenarios.clear_caches()  # force the disk path
            second = scenarios.run(scenario)
        finally:
            artifacts.reset()
            scenarios.clear_caches()
        for attr in ("loads", "paid_prices", "capacities", "server_counts"):
            assert getattr(first, attr).tobytes() == getattr(second, attr).tobytes()
        assert (
            first.distance_profile.histogram.tobytes()
            == second.distance_profile.histogram.tobytes()
        )

    def test_provider_grid_parallel_matches_serial(self, tmp_path):
        spec = sweeps.get("provider-grid").derive(n_replicas=2)
        serial_store = tmp_path / "serial"
        parallel_store = tmp_path / "parallel"

        artifacts.configure(serial_store)
        scenarios.clear_caches()
        try:
            serial = sweeps.run_sweep(spec, jobs=1)
        finally:
            artifacts.reset()
            scenarios.clear_caches()

        artifacts.configure(parallel_store)
        try:
            parallel = sweeps.run_sweep(spec, jobs=2)
        finally:
            artifacts.reset()
            scenarios.clear_caches()

        assert json.dumps(serial.to_json_dict(), sort_keys=True) == json.dumps(
            parallel.to_json_dict(), sort_keys=True
        )
