"""Tolerance edge cases for artifact diffing (NaN, ±inf, empty series).

The golden gate must neither flag a legitimately absent value (NaN in
both golden and fresh) nor silently pass a real drift hiding behind a
non-finite value.
"""

from __future__ import annotations

import numpy as np

from repro.artifacts.codec import encode_array
from repro.artifacts.diffing import compare_figure_payloads

INF = float("inf")
NAN = float("nan")


def payload(**overrides) -> dict:
    base = {
        "figure_id": "figX",
        "title": "t",
        "headers": ["a"],
        "rows": [[1.0]],
        "series": {},
        "summary": {},
        "notes": [],
    }
    base.update(overrides)
    return base


def series(values) -> dict:
    return encode_array(np.asarray(values, dtype=float))


class TestSummaryEdges:
    def test_nan_matches_nan(self):
        golden = payload(summary={"x": NAN})
        fresh = payload(summary={"x": NAN})
        assert compare_figure_payloads(golden, fresh) == []

    def test_nan_vs_number_drifts(self):
        golden = payload(summary={"x": NAN})
        fresh = payload(summary={"x": 1.0})
        assert any("summary x" in d for d in compare_figure_payloads(golden, fresh))

    def test_number_vs_nan_drifts(self):
        golden = payload(summary={"x": 1.0})
        fresh = payload(summary={"x": NAN})
        assert len(compare_figure_payloads(golden, fresh)) == 1

    def test_inf_matches_inf(self):
        golden = payload(summary={"x": INF, "y": -INF})
        fresh = payload(summary={"x": INF, "y": -INF})
        assert compare_figure_payloads(golden, fresh) == []

    def test_opposite_infinities_drift(self):
        golden = payload(summary={"x": INF})
        fresh = payload(summary={"x": -INF})
        assert len(compare_figure_payloads(golden, fresh)) == 1

    def test_inf_vs_finite_drifts(self):
        golden = payload(summary={"x": INF})
        fresh = payload(summary={"x": 1e300})
        assert len(compare_figure_payloads(golden, fresh)) == 1


class TestRowEdges:
    def test_nan_cells_match(self):
        golden = payload(rows=[[NAN, "label"]], headers=["a", "b"])
        fresh = payload(rows=[[NAN, "label"]], headers=["a", "b"])
        assert compare_figure_payloads(golden, fresh) == []

    def test_nan_cell_vs_number_drifts(self):
        golden = payload(rows=[[NAN]])
        fresh = payload(rows=[[2.0]])
        drifts = compare_figure_payloads(golden, fresh)
        assert len(drifts) == 1
        assert "row 0" in drifts[0]


class TestSeriesEdges:
    def test_empty_series_match(self):
        golden = payload(series={"s": series([])})
        fresh = payload(series={"s": series([])})
        assert compare_figure_payloads(golden, fresh) == []

    def test_empty_vs_nonempty_is_shape_drift(self):
        golden = payload(series={"s": series([])})
        fresh = payload(series={"s": series([1.0])})
        drifts = compare_figure_payloads(golden, fresh)
        assert len(drifts) == 1
        assert "shape" in drifts[0]

    def test_matching_nan_positions_pass(self):
        golden = payload(series={"s": series([1.0, NAN, 3.0])})
        fresh = payload(series={"s": series([1.0, NAN, 3.0])})
        assert compare_figure_payloads(golden, fresh) == []

    def test_nan_pattern_change_is_reported_explicitly(self):
        """A NaN appearing where the golden had a number (or vice
        versa) must be called out — nanmax over the difference would
        skip exactly those positions."""
        golden = payload(series={"s": series([1.0, NAN, 3.0])})
        fresh = payload(series={"s": series([1.0, 2.0, 3.0])})
        drifts = compare_figure_payloads(golden, fresh)
        assert len(drifts) == 1
        assert "NaN pattern" in drifts[0]

    def test_all_nan_series_match(self):
        golden = payload(series={"s": series([NAN, NAN])})
        fresh = payload(series={"s": series([NAN, NAN])})
        assert compare_figure_payloads(golden, fresh) == []

    def test_matching_infinities_pass(self):
        golden = payload(series={"s": series([INF, -INF, 1.0])})
        fresh = payload(series={"s": series([INF, -INF, 1.0])})
        assert compare_figure_payloads(golden, fresh) == []

    def test_opposite_infinities_report_deviation(self):
        golden = payload(series={"s": series([INF])})
        fresh = payload(series={"s": series([-INF])})
        drifts = compare_figure_payloads(golden, fresh)
        assert len(drifts) == 1
        assert "deviation" in drifts[0]

    def test_numeric_drift_reports_worst_deviation(self):
        golden = payload(series={"s": series([1.0, 2.0])})
        fresh = payload(series={"s": series([1.0, 2.5])})
        drifts = compare_figure_payloads(golden, fresh)
        assert len(drifts) == 1
        assert "5.000e-01" in drifts[0]

    def test_numeric_drift_with_shared_nan_ignores_nan_positions(self):
        golden = payload(series={"s": series([NAN, 2.0])})
        fresh = payload(series={"s": series([NAN, 4.0])})
        drifts = compare_figure_payloads(golden, fresh)
        assert len(drifts) == 1
        assert "2.000e+00" in drifts[0]

    def test_missing_and_extra_series_reported(self):
        golden = payload(series={"a": series([1.0])})
        fresh = payload(series={"b": series([1.0])})
        drifts = compare_figure_payloads(golden, fresh)
        assert any("missing from fresh" in d for d in drifts)
        assert any("not in golden" in d for d in drifts)
