"""Tests for repro.ext.contracts (§7 billing structures)."""

from datetime import datetime

import numpy as np
import pytest

from repro.energy import OPTIMISTIC_FUTURE
from repro.errors import ConfigurationError
from repro.ext.contracts import (
    BlendedPlan,
    FixedPricePlan,
    ProvisionedCapacityPlan,
    WholesaleIndexedPlan,
    bill,
    compare_plans,
)
from repro.sim.results import SimulationResult


def make_result(prices, loads):
    prices = np.asarray(prices, dtype=float)
    loads = np.asarray(loads, dtype=float)
    histogram = np.zeros(240)
    histogram[0] = loads.sum()
    return SimulationResult(
        start=datetime(2008, 12, 16),
        step_seconds=3600,
        cluster_labels=tuple(f"C{i}" for i in range(prices.shape[1])),
        capacities=np.full(prices.shape[1], 1000.0),
        server_counts=np.full(prices.shape[1], 100.0),
        loads=loads,
        paid_prices=prices,
        distance_histogram=histogram,
    )


@pytest.fixture(scope="module")
def cheap_heavy():
    """Consumption concentrated in cheap hours."""
    prices = np.array([[20.0], [100.0]] * 12)
    loads = np.array([[900.0], [100.0]] * 12)
    return make_result(prices, loads)


@pytest.fixture(scope="module")
def expensive_heavy():
    """Same total consumption, concentrated in expensive hours."""
    prices = np.array([[20.0], [100.0]] * 12)
    loads = np.array([[100.0], [900.0]] * 12)
    return make_result(prices, loads)


class TestPlans:
    def test_wholesale_rewards_price_chasing(self, cheap_heavy, expensive_heavy):
        plan = WholesaleIndexedPlan()
        params = OPTIMISTIC_FUTURE
        assert bill(cheap_heavy, params, plan) < bill(expensive_heavy, params, plan)

    def test_fixed_price_erases_price_chasing(self, cheap_heavy, expensive_heavy):
        plan = FixedPricePlan(rate_per_mwh=60.0)
        params = OPTIMISTIC_FUTURE
        assert bill(cheap_heavy, params, plan) == pytest.approx(bill(expensive_heavy, params, plan))

    def test_blended_in_between(self, cheap_heavy, expensive_heavy):
        params = OPTIMISTIC_FUTURE
        indexed = WholesaleIndexedPlan(adder_per_mwh=2.0)
        blended = BlendedPlan(hedged_fraction=0.7, adder_per_mwh=2.0)
        delta_indexed = bill(expensive_heavy, params, indexed) - bill(cheap_heavy, params, indexed)
        delta_blended = bill(expensive_heavy, params, blended) - bill(cheap_heavy, params, blended)
        assert 0.0 < delta_blended < delta_indexed

    def test_provisioned_capacity_ignores_consumption(self, cheap_heavy, expensive_heavy):
        plan = ProvisionedCapacityPlan()
        params = OPTIMISTIC_FUTURE
        a = bill(cheap_heavy, params, plan)
        b = bill(expensive_heavy, params, plan)
        assert a == pytest.approx(b)
        assert a > 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedPricePlan(rate_per_mwh=0.0)
        with pytest.raises(ConfigurationError):
            BlendedPlan(hedged_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ProvisionedCapacityPlan(rate_per_kw_month=0.0)


class TestComparePlans:
    def test_section7_conclusion(self, cheap_heavy, expensive_heavy):
        # cheap_heavy plays the role of price-aware routing.
        rows = compare_plans(expensive_heavy, cheap_heavy, OPTIMISTIC_FUTURE)
        by_plan = {row["plan"]: row for row in rows}
        assert by_plan["wholesale-indexed"]["savings_fraction"] > 0.3
        assert by_plan["fixed-price"]["savings_fraction"] == pytest.approx(0.0, abs=1e-9)
        assert by_plan["provisioned capacity"]["savings_fraction"] == pytest.approx(0.0, abs=1e-9)
        blended = by_plan["blended (70% hedged)"]["savings_fraction"]
        assert 0.0 < blended < by_plan["wholesale-indexed"]["savings_fraction"]
