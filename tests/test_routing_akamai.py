"""Tests for repro.routing.akamai (the baseline router)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.routing.akamai import BaselineProximityRouter
from repro.routing.base import RoutingProblem
from repro.traffic.clusters import akamai_like_deployment


@pytest.fixture(scope="module")
def problem():
    return RoutingProblem(akamai_like_deployment())


@pytest.fixture(scope="module")
def router(problem):
    return BaselineProximityRouter(problem)


def uniform_demand(problem, total=900_000.0):
    return np.full(problem.n_states, total / problem.n_states)


class TestBaseline:
    def test_validation(self, problem):
        with pytest.raises(ConfigurationError):
            BaselineProximityRouter(problem, balance_slack=0.5)

    def test_conserves_demand(self, problem, router):
        demand = uniform_demand(problem)
        limits = np.full(problem.n_clusters, np.inf)
        alloc = router.allocate(demand, np.zeros(9), limits)
        assert np.allclose(alloc.sum(axis=1), demand)

    def test_price_blind(self, problem, router):
        demand = uniform_demand(problem)
        limits = np.full(problem.n_clusters, np.inf)
        cheap_east = np.array([100.0, 100, 1.0, 1, 1, 1, 1, 100, 100])
        cheap_west = cheap_east[::-1].copy()
        a = router.allocate(demand, cheap_east, limits)
        b = router.allocate(demand, cheap_west, limits)
        assert np.array_equal(a, b)

    def test_balances_toward_capacity_shares(self, problem, router):
        demand = uniform_demand(problem)
        limits = np.full(problem.n_clusters, np.inf)
        alloc = router.allocate(demand, np.zeros(9), limits)
        loads = alloc.sum(axis=0)
        shares = problem.deployment.capacities / problem.deployment.total_capacity
        targets = shares * demand.sum()
        assert np.all(loads <= targets * router.balance_slack + 1e-6)

    def test_geographic_locality(self, problem, router):
        # Massachusetts demand should land overwhelmingly in the
        # Northeast clusters (MA/NY/NJ), not in Texas or California.
        demand = np.zeros(problem.n_states)
        ma = problem.state_codes.index("MA")
        demand[ma] = 1000.0
        limits = np.full(problem.n_clusters, np.inf)
        alloc = router.allocate(demand, np.zeros(9), limits)
        labels = problem.deployment.labels
        northeast = sum(alloc[ma, labels.index(c)] for c in ("MA", "NY", "NJ"))
        assert northeast == pytest.approx(1000.0)

    def test_respects_external_limits(self, problem, router):
        demand = uniform_demand(problem, total=1.2e6)
        limits = problem.deployment.capacities * 0.6
        alloc = router.allocate(demand, np.zeros(9), limits)
        assert np.all(alloc.sum(axis=0) <= limits + 1e-6)

    def test_deterministic(self, problem, router):
        demand = uniform_demand(problem)
        limits = np.full(problem.n_clusters, np.inf)
        a = router.allocate(demand, np.zeros(9), limits)
        b = router.allocate(demand, np.zeros(9), limits)
        assert np.array_equal(a, b)
