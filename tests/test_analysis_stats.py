"""Tests for repro.analysis.stats."""

import numpy as np
import pytest

from repro.analysis.stats import (
    fraction_within,
    histogram_fractions,
    mutual_information,
    pearson_kurtosis,
    trimmed_values,
)
from repro.errors import ConfigurationError


class TestTrimming:
    def test_removes_both_tails(self):
        values = np.concatenate([np.full(96, 10.0), [-1e6, -1e6, 1e6, 1e6]])
        kept = trimmed_values(values, 0.02)
        assert kept.min() == 10.0
        assert kept.max() == 10.0

    def test_zero_fraction_identity(self):
        values = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(trimmed_values(values, 0.0), values)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            trimmed_values(np.array([]), 0.01)
        with pytest.raises(ConfigurationError):
            trimmed_values(np.ones(5), 0.5)


class TestKurtosis:
    def test_normal_is_three(self):
        rng = np.random.default_rng(0)
        assert pearson_kurtosis(rng.standard_normal(200_000)) == pytest.approx(3.0, abs=0.1)

    def test_uniform_below_three(self):
        rng = np.random.default_rng(1)
        assert pearson_kurtosis(rng.uniform(size=100_000)) < 2.0

    def test_heavy_tailed_above_three(self):
        rng = np.random.default_rng(2)
        assert pearson_kurtosis(rng.standard_t(4, size=100_000)) > 4.0

    def test_constant_is_zero(self):
        assert pearson_kurtosis(np.full(100, 5.0)) == 0.0

    def test_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            pearson_kurtosis(np.array([1.0]))


class TestHistogramFractions:
    def test_fractions_of_total(self):
        values = np.array([1.0, 2.0, 3.0, 100.0])
        fractions, _ = histogram_fractions(values, np.array([0.0, 5.0]))
        # 3 of 4 samples fall in range; out-of-range counts in the
        # denominator (matching the paper's "78% samples" annotations).
        assert fractions[0] == pytest.approx(0.75)

    def test_fraction_within(self):
        values = np.array([-30.0, -10.0, 0.0, 10.0, 30.0])
        assert fraction_within(values, 20.0) == pytest.approx(0.6)


class TestMutualInformation:
    def test_independent_near_zero(self):
        rng = np.random.default_rng(3)
        x, y = rng.standard_normal(50_000), rng.standard_normal(50_000)
        assert mutual_information(x, y) < 0.05

    def test_identical_high(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(50_000)
        assert mutual_information(x, x) > 1.0

    def test_detects_nonlinear_dependence(self):
        # |x| is uncorrelated with x but strongly dependent — the
        # footnote-8 motivation for using I(x, y).
        rng = np.random.default_rng(5)
        x = rng.standard_normal(50_000)
        y = np.abs(x)
        assert abs(np.corrcoef(x, y)[0, 1]) < 0.05
        assert mutual_information(x, y) > 0.3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mutual_information(np.ones(5), np.ones(4))
