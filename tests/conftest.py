"""Shared fixtures.

Heavy artifacts (market data sets, traces, baseline simulations) are
session-scoped: they are deterministic, read-only, and expensive, so
every test file shares one instance.
"""

from __future__ import annotations

from datetime import datetime

import pytest

from repro import artifacts
from repro.markets import MarketConfig, generate_market
from repro.routing import BaselineProximityRouter, RoutingProblem
from repro.sim import simulate
from repro.traffic import TraceConfig, akamai_like_deployment, make_trace


@pytest.fixture(autouse=True)
def _no_ambient_artifact_store(monkeypatch):
    """Keep tests hermetic: no artifact store unless a test opts in.

    Tests that exercise persistence call ``artifacts.configure`` (or
    set ``REPRO_ARTIFACT_DIR``) themselves, against a tmp path.
    """
    monkeypatch.delenv(artifacts.ENV_STORE_DIR, raising=False)
    artifacts.reset()
    yield
    artifacts.reset()


@pytest.fixture(scope="session")
def small_dataset():
    """Six months of prices — enough structure for behavioural tests."""
    return generate_market(MarketConfig(start=datetime(2008, 10, 1), months=6, seed=7))


@pytest.fixture(scope="session")
def full_dataset():
    """The paper-shaped 39-month data set for calibration tests."""
    return generate_market(MarketConfig(seed=2009))


@pytest.fixture(scope="session")
def trace24():
    """A 24-day five-minute trace inside the small dataset's calendar."""
    return make_trace(TraceConfig(start=datetime(2008, 12, 16), seed=7))


@pytest.fixture(scope="session")
def short_trace():
    """A two-day trace for fast engine tests."""
    return make_trace(TraceConfig(start=datetime(2008, 12, 16), n_steps=2 * 288, seed=7))


@pytest.fixture(scope="session")
def problem():
    return RoutingProblem(akamai_like_deployment())


@pytest.fixture(scope="session")
def baseline24(trace24, small_dataset, problem):
    return simulate(trace24, small_dataset, problem, BaselineProximityRouter(problem))
