"""Tests for repro.geo.coords."""

import math

import numpy as np
import pytest

from repro.geo.coords import EARTH_RADIUS_KM, LatLon, haversine_km, pairwise_haversine_km

BOSTON = LatLon(42.36, -71.06)
CHICAGO = LatLon(41.88, -87.63)
LA = LatLon(34.05, -118.24)
DC = LatLon(38.91, -77.04)


class TestLatLon:
    def test_valid_construction(self):
        p = LatLon(40.0, -74.0)
        assert p.lat == 40.0
        assert p.lon == -74.0

    def test_latitude_bounds(self):
        with pytest.raises(ValueError):
            LatLon(90.1, 0.0)
        with pytest.raises(ValueError):
            LatLon(-90.1, 0.0)

    def test_longitude_bounds(self):
        with pytest.raises(ValueError):
            LatLon(0.0, 180.5)
        with pytest.raises(ValueError):
            LatLon(0.0, -180.5)

    def test_poles_and_antimeridian_allowed(self):
        LatLon(90.0, 0.0)
        LatLon(-90.0, 180.0)

    def test_frozen(self):
        p = LatLon(1.0, 2.0)
        with pytest.raises(AttributeError):
            p.lat = 3.0

    def test_distance_method_matches_function(self):
        assert BOSTON.distance_km(CHICAGO) == haversine_km(BOSTON, CHICAGO)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(BOSTON, BOSTON) == 0.0

    def test_symmetry(self):
        assert haversine_km(BOSTON, LA) == pytest.approx(haversine_km(LA, BOSTON))

    def test_boston_chicago_about_1400km(self):
        # The paper quotes ~1400 km Boston-Chicago.
        assert haversine_km(BOSTON, CHICAGO) == pytest.approx(1370, rel=0.05)

    def test_boston_dc_area_about_650km(self):
        # The paper quotes ~650 km Boston-Alexandria(VA).
        assert haversine_km(BOSTON, DC) == pytest.approx(650, rel=0.1)

    def test_coast_to_coast_over_4000km(self):
        assert haversine_km(BOSTON, LA) > 4_000

    def test_antipodal_is_half_circumference(self):
        a = LatLon(0.0, 0.0)
        b = LatLon(0.0, 180.0)
        assert haversine_km(a, b) == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_triangle_inequality(self):
        ab = haversine_km(BOSTON, CHICAGO)
        bc = haversine_km(CHICAGO, LA)
        ac = haversine_km(BOSTON, LA)
        assert ac <= ab + bc + 1e-9


class TestPairwiseHaversine:
    def test_matches_scalar(self):
        points_a = np.array([[BOSTON.lat, BOSTON.lon], [CHICAGO.lat, CHICAGO.lon]])
        points_b = np.array([[LA.lat, LA.lon], [DC.lat, DC.lon], [BOSTON.lat, BOSTON.lon]])
        matrix = pairwise_haversine_km(points_a, points_b)
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] == pytest.approx(haversine_km(BOSTON, LA), rel=1e-9)
        assert matrix[1, 1] == pytest.approx(haversine_km(CHICAGO, DC), rel=1e-9)
        assert matrix[0, 2] == pytest.approx(0.0, abs=1e-9)

    def test_all_nonnegative(self):
        rng = np.random.default_rng(0)
        pts = np.column_stack([rng.uniform(-80, 80, 10), rng.uniform(-170, 170, 10)])
        assert np.all(pairwise_haversine_km(pts, pts) >= 0.0)
