"""Integration tests: the whole stack end to end.

These assert the paper's *headline behaviours* on a compact setup —
the same claims the benchmarks then reproduce at full scale.
"""

import numpy as np
import pytest

from repro import quickstart
from repro.energy import (
    FULLY_ELASTIC,
    GOOGLE_LIKE,
    NO_POWER_MANAGEMENT,
    OPTIMISTIC_FUTURE,
)
from repro.routing import PriceConsciousRouter
from repro.sim import SimulationOptions, simulate


@pytest.fixture(scope="module")
def runs(trace24, small_dataset, problem, baseline24):
    """Baseline + price runs at two thresholds, both constraint modes."""
    caps = baseline24.percentiles_95()
    out = {"baseline": baseline24}
    for threshold in (0.0, 1500.0, 2500.0):
        router = PriceConsciousRouter(problem, distance_threshold_km=threshold)
        out[threshold, "relaxed"] = simulate(trace24, small_dataset, problem, router)
        out[threshold, "followed"] = simulate(
            trace24,
            small_dataset,
            problem,
            router,
            SimulationOptions(bandwidth_caps=caps),
        )
    return out


class TestHeadlineClaims:
    def test_price_routing_saves_money_when_elastic(self, runs):
        base = runs["baseline"]
        savings = runs[1500.0, "relaxed"].savings_vs(base, OPTIMISTIC_FUTURE)
        assert savings > 0.10

    def test_savings_increase_with_threshold(self, runs):
        base = runs["baseline"]
        s0 = runs[0.0, "relaxed"].savings_vs(base, OPTIMISTIC_FUTURE)
        s1500 = runs[1500.0, "relaxed"].savings_vs(base, OPTIMISTIC_FUTURE)
        s2500 = runs[2500.0, "relaxed"].savings_vs(base, OPTIMISTIC_FUTURE)
        assert s0 < s1500 < s2500

    def test_elasticity_gates_savings(self, runs):
        base = runs["baseline"]
        result = runs[1500.0, "relaxed"]
        s_elastic = result.savings_vs(base, FULLY_ELASTIC)
        s_future = result.savings_vs(base, OPTIMISTIC_FUTURE)
        s_google = result.savings_vs(base, GOOGLE_LIKE)
        s_nopm = result.savings_vs(base, NO_POWER_MANAGEMENT)
        assert s_elastic > s_future > s_google > s_nopm
        assert s_nopm < 0.02  # inelastic systems cannot save

    def test_95_5_cuts_but_does_not_eliminate_savings(self, runs):
        base = runs["baseline"]
        relaxed = runs[1500.0, "relaxed"].savings_vs(base, OPTIMISTIC_FUTURE)
        followed = runs[1500.0, "followed"].savings_vs(base, OPTIMISTIC_FUTURE)
        assert 0.0 < followed < relaxed

    def test_distance_buys_savings(self, runs):
        d0 = runs[0.0, "relaxed"].mean_distance_km
        d2500 = runs[2500.0, "relaxed"].mean_distance_km
        assert d2500 > d0

    def test_followed_95_percentiles_not_raised(self, runs):
        caps = runs["baseline"].percentiles_95()
        for threshold in (0.0, 1500.0, 2500.0):
            p95 = runs[threshold, "followed"].percentiles_95()
            assert np.all(p95 <= caps * 1.02 + 1e-6)

    def test_energy_conserved_across_routers(self, runs):
        # Total served hits identical for every policy: routing moves
        # demand around, never creates or destroys it.
        expected = runs["baseline"].total_hits()
        for key, result in runs.items():
            if key == "baseline":
                continue
            assert result.total_hits() == pytest.approx(expected, rel=1e-9)

    def test_reaction_delay_costs_money(self, trace24, small_dataset, problem):
        router = PriceConsciousRouter(problem, 1500.0)
        fast = simulate(
            trace24,
            small_dataset,
            problem,
            router,
            SimulationOptions(reaction_delay_hours=0),
        )
        slow = simulate(
            trace24,
            small_dataset,
            problem,
            router,
            SimulationOptions(reaction_delay_hours=12),
        )
        assert slow.total_cost(FULLY_ELASTIC) > fast.total_cost(FULLY_ELASTIC)


class TestQuickstart:
    def test_quickstart_runs_and_saves(self):
        result = quickstart(months=3, seed=3)
        assert result["savings_future_model"] > 0.0
        assert result["priced_cost_future_model"] < result["baseline_cost_future_model"]
        assert result["mean_distance_km"] > 0.0
