"""Tests for repro.markets.series."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import ConfigurationError, SeriesAlignmentError
from repro.markets.series import PriceSeries

START = datetime(2006, 1, 1)


def make_series(values, step=3600, label="X"):
    return PriceSeries(START, np.asarray(values, dtype=float), step, label)


class TestConstruction:
    def test_values_copied_and_read_only(self):
        data = np.ones(10)
        series = make_series(data)
        data[0] = 99.0
        assert series.values[0] == 1.0
        with pytest.raises(ValueError):
            series.values[0] = 2.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            make_series([])

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            PriceSeries(START, np.ones((2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            make_series([1.0, np.nan])

    def test_end_and_duration(self):
        series = make_series(np.arange(48))
        assert series.end == START + timedelta(hours=48)
        assert series.duration_hours == 48


class TestArithmetic:
    def test_subtraction_aligned(self):
        a = make_series([10.0, 20.0, 30.0], label="A")
        b = make_series([1.0, 2.0, 3.0], label="B")
        diff = a - b
        assert np.allclose(diff.values, [9.0, 18.0, 27.0])
        assert diff.label == "A-B"

    def test_subtraction_misaligned_raises(self):
        a = make_series([1.0, 2.0])
        b = PriceSeries(START + timedelta(hours=1), np.array([1.0, 2.0]))
        with pytest.raises(SeriesAlignmentError):
            a - b

    def test_shift_repeats_first_value(self):
        series = make_series([1.0, 2.0, 3.0, 4.0])
        shifted = series.shifted(2)
        assert np.allclose(shifted.values, [1.0, 1.0, 1.0, 2.0])

    def test_shift_zero_is_identity(self):
        series = make_series([1.0, 2.0])
        assert series.shifted(0) is series

    def test_negative_shift_rejected(self):
        with pytest.raises(ConfigurationError):
            make_series([1.0]).shifted(-1)


class TestResampling:
    def test_daily_average(self):
        values = np.concatenate([np.full(24, 10.0), np.full(24, 30.0)])
        daily = make_series(values).daily_average()
        assert np.allclose(daily.values, [10.0, 30.0])
        assert daily.step_seconds == 86_400

    def test_resample_drops_partial_block(self):
        series = make_series(np.arange(25.0))
        daily = series.resample_mean(24)
        assert len(daily) == 1

    def test_windowed_std_native(self):
        rng = np.random.default_rng(0)
        series = make_series(rng.normal(50, 10, 2000))
        assert series.windowed_std(1) == pytest.approx(series.std)

    def test_windowed_std_decreases_for_iid(self):
        rng = np.random.default_rng(1)
        series = make_series(rng.normal(50, 10, 5000))
        assert series.windowed_std(24) < series.windowed_std(1)

    def test_window_finer_than_step_rejected(self):
        with pytest.raises(ConfigurationError):
            make_series([1.0, 2.0]).windowed_std(0.5)


class TestStatistics:
    def test_changes(self):
        series = make_series([1.0, 4.0, 2.0])
        assert np.allclose(series.changes(), [3.0, -2.0])

    def test_trimming_removes_extremes(self):
        values = np.concatenate([np.full(98, 50.0), [1000.0, -1000.0]])
        series = make_series(values)
        trimmed = series.trimmed(0.02)
        assert trimmed.max() < 1000.0
        assert trimmed.min() > -1000.0

    def test_trim_zero_returns_all(self):
        series = make_series([1.0, 2.0, 3.0])
        assert len(series.trimmed(0.0)) == 3

    def test_stats_gaussian_kurtosis_near_3(self):
        rng = np.random.default_rng(2)
        series = make_series(rng.normal(60, 5, 50_000))
        stats = series.stats(trim_fraction=0.0)
        assert stats.kurtosis == pytest.approx(3.0, abs=0.15)
        assert stats.mean == pytest.approx(60.0, abs=0.2)

    def test_invalid_trim_fraction(self):
        with pytest.raises(ConfigurationError):
            make_series([1.0, 2.0]).stats(trim_fraction=0.7)


class TestSlicing:
    def test_monthly_slices_cover_everything(self):
        hours = (31 + 28) * 24
        series = make_series(np.arange(float(hours)))
        chunks = series.monthly_slices()
        assert len(chunks) == 2
        assert len(chunks[0]) == 31 * 24
        assert len(chunks[1]) == 28 * 24
        rejoined = np.concatenate([c.values for c in chunks])
        assert np.allclose(rejoined, series.values)

    def test_slice_dates(self):
        series = make_series(np.arange(72.0))
        part = series.slice_dates(START + timedelta(hours=24), START + timedelta(hours=48))
        assert len(part) == 24
        assert part.values[0] == 24.0

    def test_empty_slice_rejected(self):
        series = make_series(np.arange(10.0))
        with pytest.raises(ConfigurationError):
            series.slice(5, 5)
