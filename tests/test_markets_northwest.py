"""Tests for repro.markets.northwest (the Fig. 3 MID-C series)."""

from datetime import datetime

import numpy as np
import pytest

from repro.markets.northwest import MIDC_MEAN_PRICE, northwest_daily_series


@pytest.fixture(scope="module")
def series():
    return northwest_daily_series(datetime(2006, 1, 1), 39, seed=2009)


class TestNorthwest:
    def test_daily_resolution(self, series):
        assert series.step_seconds == 86_400
        assert len(series) == 1186  # 39 months of days

    def test_positive_prices(self, series):
        assert series.values.min() > 0.0

    def test_mean_near_nominal(self, series):
        assert series.mean == pytest.approx(MIDC_MEAN_PRICE, rel=0.25)

    def test_april_may_dip(self, series):
        months = np.array([d.month for d in series.time_axis()])
        spring = series.values[(months == 4) | (months == 5)].mean()
        rest = series.values[(months != 4) & (months != 5)].mean()
        # The hydro run-off dip: spring well below the rest of the year.
        assert spring < 0.8 * rest

    def test_no_2008_gas_hump(self, series):
        years = np.array([d.year for d in series.time_axis()])
        mean_2007 = series.values[years == 2007].mean()
        mean_2008 = series.values[years == 2008].mean()
        # Hydro region: 2008 within 15% of 2007 (gas-coupled hubs jump >25%).
        assert mean_2008 == pytest.approx(mean_2007, rel=0.15)

    def test_deterministic(self):
        a = northwest_daily_series(datetime(2006, 1, 1), 6, seed=1)
        b = northwest_daily_series(datetime(2006, 1, 1), 6, seed=1)
        assert np.array_equal(a.values, b.values)
