"""Tests for repro.markets.correlation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.markets.correlation import (
    CorrelationModel,
    build_target_matrix,
    correlated_normals,
    nearest_positive_definite,
    target_pair_correlation,
)
from repro.markets.hubs import all_hubs, get_hub


class TestTargetFunction:
    def test_self_correlation_is_one(self):
        hub = get_hub("NYC")
        assert target_pair_correlation(hub, hub) == 1.0

    def test_same_rto_above_cross_rto(self):
        same = target_pair_correlation(get_hub("NP15"), get_hub("SP15"))
        cross = target_pair_correlation(get_hub("NP15"), get_hub("DOM"))
        assert same > cross

    def test_boundary_effect_dominates_distance(self):
        # Chicago (PJM) and Peoria (MISO) are ~150 km apart but in
        # different markets; their target must sit below the same-RTO
        # floor (the Fig. 8 boundary effect).
        model = CorrelationModel()
        cross_near = target_pair_correlation(get_hub("CHI"), get_hub("IL"), model)
        assert cross_near < model.same_floor

    def test_distance_decay_within_group(self):
        # Cross-RTO: nearer pairs correlate more.
        near = target_pair_correlation(get_hub("CHI"), get_hub("IL"))
        far = target_pair_correlation(get_hub("NP15"), get_hub("MA-BOS"))
        assert near > far

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            CorrelationModel(cross_cap=0.9, same_floor=0.7)


class TestMatrix:
    def test_full_matrix_properties(self):
        hubs = all_hubs()
        matrix = build_target_matrix(hubs)
        assert matrix.shape == (29, 29)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)
        off_diag = matrix[~np.eye(29, dtype=bool)]
        assert np.all(off_diag > 0.0)  # "No pairs were negatively correlated"
        assert np.all(off_diag < 1.0)

    def test_psd_projection_small_drift(self):
        hubs = all_hubs()
        matrix = build_target_matrix(hubs)
        psd = nearest_positive_definite(matrix)
        assert np.max(np.abs(psd - matrix)) < 0.05
        eigvals = np.linalg.eigvalsh(psd)
        assert np.all(eigvals > 0)

    def test_psd_projection_fixes_indefinite(self):
        bad = np.array([[1.0, 0.9, 0.1], [0.9, 1.0, 0.9], [0.1, 0.9, 1.0]])
        assert np.min(np.linalg.eigvalsh(bad)) < 0
        fixed = nearest_positive_definite(bad)
        assert np.min(np.linalg.eigvalsh(fixed)) > 0
        assert np.allclose(np.diag(fixed), 1.0)


class TestCorrelatedNormals:
    def test_realised_correlation_matches_target(self):
        target = np.array([[1.0, 0.8], [0.8, 1.0]])
        rng = np.random.default_rng(0)
        draws = correlated_normals(100_000, target, rng)
        realised = np.corrcoef(draws.T)[0, 1]
        assert realised == pytest.approx(0.8, abs=0.01)

    def test_unit_marginals(self):
        hubs = all_hubs()[:5]
        target = build_target_matrix(hubs)
        rng = np.random.default_rng(1)
        draws = correlated_normals(50_000, target, rng)
        assert draws.std(axis=0) == pytest.approx(np.ones(5), abs=0.03)

    def test_deterministic_given_rng_seed(self):
        target = build_target_matrix(all_hubs()[:3])
        a = correlated_normals(100, target, np.random.default_rng(42))
        b = correlated_normals(100, target, np.random.default_rng(42))
        assert np.array_equal(a, b)
