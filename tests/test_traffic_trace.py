"""Tests for repro.traffic.trace and repro.traffic.synthetic."""

from datetime import datetime

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.markets.calendar import HourlyCalendar
from repro.traffic.synthetic import TraceConfig, make_trace, make_turn_of_year_trace
from repro.traffic.trace import HourOfWeekWorkload, TrafficTrace


def tiny_trace(n_steps=288 * 8, step=300):
    start = datetime(2008, 12, 15)  # a Monday
    rng = np.random.default_rng(0)
    demand = rng.random((n_steps, 3)) + 0.5
    return TrafficTrace(start, step, ("MA", "NY", "CA"), demand)


class TestTrafficTrace:
    def test_validation_shapes(self):
        with pytest.raises(ConfigurationError):
            TrafficTrace(datetime(2008, 1, 1), 300, ("MA",), np.ones((5, 2)))
        with pytest.raises(ConfigurationError):
            TrafficTrace(datetime(2008, 1, 1), 300, ("MA",), np.ones(5))
        with pytest.raises(ConfigurationError):
            TrafficTrace(datetime(2008, 1, 1), 300, ("MA",), -np.ones((5, 1)))

    def test_demand_read_only(self):
        trace = tiny_trace()
        with pytest.raises(ValueError):
            trace.demand[0, 0] = 5.0

    def test_totals(self):
        trace = tiny_trace()
        assert np.allclose(trace.total_us(), trace.demand.sum(axis=1))
        assert trace.peak_us == trace.total_us().max()

    def test_global_includes_non_us(self):
        base = tiny_trace(n_steps=10)
        with_non_us = TrafficTrace(
            base.start,
            300,
            base.state_codes,
            base.demand,
            non_us=np.full(10, 7.0),
        )
        assert np.allclose(with_non_us.total_global(), with_non_us.total_us() + 7.0)

    def test_resample_hourly(self):
        trace = tiny_trace(n_steps=24)  # two hours of 5-min samples
        hourly = trace.resample_hourly()
        assert hourly.n_steps == 2
        assert hourly.step_seconds == 3600
        expected = trace.demand[:12].mean(axis=0)
        assert np.allclose(hourly.demand[0], expected)

    def test_resample_noop_for_hourly(self):
        trace = tiny_trace(n_steps=48, step=3600)
        assert trace.resample_hourly() is trace

    def test_hour_of_week_average_shape(self):
        trace = tiny_trace(n_steps=288 * 8)  # 8 days covers the week
        table = trace.hour_of_week_average()
        assert table.shape == (168, 3)
        assert np.all(table > 0)

    def test_hour_of_week_too_short(self):
        trace = tiny_trace(n_steps=288)  # one day only
        with pytest.raises(ConfigurationError):
            trace.hour_of_week_average()


class TestHourOfWeekWorkload:
    def test_expand_is_periodic(self):
        trace = tiny_trace()
        workload = HourOfWeekWorkload.from_trace(trace)
        calendar = HourlyCalendar.for_days(datetime(2008, 12, 15), 21)
        expanded = workload.expand(calendar)
        assert expanded.n_steps == 21 * 24
        # Exactly periodic with a one-week period.
        assert np.allclose(expanded.demand[:168], expanded.demand[168:336])

    def test_expand_aligns_hour_of_week(self):
        trace = tiny_trace()
        workload = HourOfWeekWorkload.from_trace(trace)
        # Start Wednesday 06:00: first row must be hour-of-week 54.
        calendar = HourlyCalendar(datetime(2008, 12, 17, 6), 24)
        expanded = workload.expand(calendar)
        assert np.allclose(expanded.demand[0], workload.table[2 * 24 + 6])

    def test_table_validation(self):
        with pytest.raises(ConfigurationError):
            HourOfWeekWorkload(("MA",), np.ones((100, 1)))
        with pytest.raises(ConfigurationError):
            HourOfWeekWorkload(("MA",), -np.ones((168, 1)))


class TestSyntheticTrace:
    def test_paper_shape(self):
        trace = make_turn_of_year_trace()
        assert trace.step_seconds == 300
        assert trace.duration_hours > 24 * 24  # "24 days and some hours"
        assert trace.n_states == 49
        assert trace.non_us is not None

    def test_peaks_near_paper_values(self):
        trace = make_turn_of_year_trace()
        assert trace.peak_us == pytest.approx(1.25e6, rel=0.25)
        assert trace.peak_global > 1.6e6

    def test_deterministic(self):
        a = make_turn_of_year_trace(seed=5)
        b = make_turn_of_year_trace(seed=5)
        assert np.array_equal(a.demand, b.demand)

    def test_seed_changes_trace(self):
        a = make_turn_of_year_trace(seed=5)
        b = make_turn_of_year_trace(seed=6)
        assert not np.array_equal(a.demand, b.demand)

    def test_custom_config(self):
        trace = make_trace(TraceConfig(n_steps=100, include_non_us=False))
        assert trace.n_steps == 100
        assert trace.non_us is None

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TraceConfig(n_steps=0)
