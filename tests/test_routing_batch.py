"""Property tests: ``allocate_batch`` must replay ``allocate`` exactly.

The batched engine is only allowed to exist because every router's
batch path is equivalent, step for step, to its scalar path — these
tests pin that contract on randomized demand/price/limit tensors,
including limit regimes tight enough to force the greedy spill and the
beyond-preference fallback.
"""

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleAllocationError
from repro.routing import (
    BaselineProximityRouter,
    JointOptimizationRouter,
    PriceConsciousRouter,
    RoutingProblem,
    StaticSingleHubRouter,
    batch_allocate,
    greedy_fill,
    greedy_fill_batch,
)
from repro.traffic.clusters import akamai_like_deployment

ROUTER_KINDS = ("static", "baseline", "price", "joint")

#: Total-limit margin over peak national demand; 1.02 forces heavy
#: spill (barely feasible), inf never constrains.
TIGHTNESS = (1.02, 1.3, 3.0, np.inf)


@lru_cache(maxsize=1)
def _problem() -> RoutingProblem:
    return RoutingProblem(akamai_like_deployment())


def _router(kind: str, threshold_km: float):
    problem = _problem()
    if kind == "static":
        return StaticSingleHubRouter(problem, 4)
    if kind == "baseline":
        return BaselineProximityRouter(problem)
    if kind == "price":
        return PriceConsciousRouter(problem, distance_threshold_km=threshold_km)
    return JointOptimizationRouter(problem, distance_threshold_km=threshold_km or None)


def _inputs(seed: int, n_steps: int, tightness: float):
    problem = _problem()
    rng = np.random.default_rng(seed)
    demand = rng.random((n_steps, problem.n_states)) * rng.choice([1e3, 3e4, 2e5])
    prices = rng.random((n_steps, problem.n_clusters)) * 120.0 + 15.0
    if np.isinf(tightness):
        limits = np.full(problem.n_clusters, np.inf)
    else:
        # Uneven per-cluster ceilings that sum to `tightness` times the
        # peak step's demand, so some clusters fill long before others
        # but every step stays feasible.
        shares = 0.25 + rng.random(problem.n_clusters)
        shares /= shares.sum()
        limits = shares * float(demand.sum(axis=1).max()) * tightness
    return demand, prices, limits


@pytest.mark.parametrize("kind", ROUTER_KINDS)
@given(
    seed=st.integers(0, 2**31 - 1),
    tightness=st.sampled_from(TIGHTNESS),
    threshold_km=st.sampled_from((0.0, 800.0, 1500.0, 5000.0)),
)
@settings(max_examples=25, deadline=None)
def test_allocate_batch_matches_per_step(kind, seed, tightness, threshold_km):
    router = _router(kind, threshold_km)
    demand, prices, limits = _inputs(seed, 6, tightness)
    try:
        reference = np.stack(
            [router.allocate(demand[t], prices[t], limits) for t in range(len(demand))]
        )
    except InfeasibleAllocationError:
        with pytest.raises(InfeasibleAllocationError):
            batch_allocate(router, demand, prices, limits)
        return
    batch = batch_allocate(router, demand, prices, limits)
    assert batch.shape == reference.shape
    np.testing.assert_allclose(batch, reference, rtol=0.0, atol=1e-9)


@pytest.mark.parametrize("kind", ROUTER_KINDS)
def test_allocate_batch_matches_per_step_big(kind):
    """One larger deterministic batch per router (spill-heavy limits)."""
    router = _router(kind, 1500.0)
    demand, prices, limits = _inputs(2009, 96, 1.05)
    reference = np.stack(
        [router.allocate(demand[t], prices[t], limits) for t in range(len(demand))]
    )
    batch = batch_allocate(router, demand, prices, limits)
    np.testing.assert_allclose(batch, reference, rtol=0.0, atol=1e-9)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_greedy_fill_batch_matches_scalar(seed):
    """The batched fill replays the scalar fill on shared orders."""
    rng = np.random.default_rng(seed)
    n_steps, n_states, n_clusters = 5, 8, 4
    demand = rng.random((n_steps, n_states)) * 50.0
    limits = np.full(n_clusters, float(demand.sum(axis=1).max()) / 2.5)
    orders = np.stack([rng.permutation(n_clusters) for _ in range(n_states)])
    reference = np.stack(
        [
            greedy_fill(demand[t], [orders[s] for s in range(n_states)], limits)
            for t in range(n_steps)
        ]
    )
    batch = greedy_fill_batch(demand, orders, limits)
    np.testing.assert_allclose(batch, reference, rtol=0.0, atol=1e-9)


def test_batch_fallback_shim_preserves_order():
    """Routers without allocate_batch get sequential per-step calls."""

    calls = []

    class Recorder:
        def allocate(self, demand, prices, limits):
            calls.append(float(prices[0]))
            out = np.zeros((demand.shape[0], limits.shape[0]))
            out[:, 0] = demand
            return out

    demand = np.ones((4, 3))
    prices = np.arange(4, dtype=float)[:, None] * np.ones((4, 2))
    limits = np.full(2, np.inf)
    out = batch_allocate(Recorder(), demand, prices, limits)
    assert calls == [0.0, 1.0, 2.0, 3.0]
    assert out.shape == (4, 3, 2)
    assert np.all(out[:, :, 0] == 1.0)


class TestGreedyFillFallbackOrder:
    def test_fallback_prefers_listed_then_headroom(self):
        # State lists only cluster 0 (capacity 5); the 7 leftover hits
        # spill to unlisted clusters by descending headroom.
        demand = np.array([12.0])
        orders = [np.array([0])]
        limits = np.array([5.0, 30.0, 10.0])
        alloc = greedy_fill(demand, orders, limits)
        assert alloc[0, 0] == 5.0
        assert alloc[0, 1] == 7.0
        assert alloc[0, 2] == 0.0

    def test_fallback_headroom_tie_breaks_to_lower_index(self):
        demand = np.array([12.0])
        orders = [np.array([0])]
        limits = np.array([5.0, 10.0, 10.0])
        alloc = greedy_fill(demand, orders, limits)
        # Clusters 1 and 2 tie on headroom; the lower index wins.
        assert alloc[0, 1] == 7.0
        assert alloc[0, 2] == 0.0
