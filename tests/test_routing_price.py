"""Tests for repro.routing.price (the paper's core optimizer)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.routing.base import RoutingProblem
from repro.routing.price import METRO_RADIUS_KM, PriceConsciousRouter
from repro.traffic.clusters import akamai_like_deployment


@pytest.fixture(scope="module")
def problem():
    return RoutingProblem(akamai_like_deployment())


def relaxed_limits(problem):
    return np.full(problem.n_clusters, np.inf)


class TestCandidateSets:
    def test_zero_threshold_gives_metro_fallback(self, problem):
        router = PriceConsciousRouter(problem, distance_threshold_km=0.0)
        for cands in router.candidate_sets:
            assert cands.size >= 1

    def test_huge_threshold_gives_all_clusters(self, problem):
        router = PriceConsciousRouter(problem, distance_threshold_km=10_000.0)
        for cands in router.candidate_sets:
            assert cands.size == problem.n_clusters

    def test_candidates_grow_with_threshold(self, problem):
        small = PriceConsciousRouter(problem, 500.0)
        large = PriceConsciousRouter(problem, 2000.0)
        for s, l in zip(small.candidate_sets, large.candidate_sets):
            assert set(s) <= set(l)

    def test_fallback_includes_metro_neighbours(self, problem):
        router = PriceConsciousRouter(problem, 0.0)
        distances = problem.distances.matrix
        for s, cands in enumerate(router.candidate_sets):
            nearest = distances[s].min()
            expected = np.flatnonzero(distances[s] <= nearest + METRO_RADIUS_KM)
            assert set(cands) == set(expected)

    def test_validation(self, problem):
        with pytest.raises(ConfigurationError):
            PriceConsciousRouter(problem, -1.0)
        with pytest.raises(ConfigurationError):
            PriceConsciousRouter(problem, 100.0, price_threshold=-1.0)


class TestAllocation:
    def test_conserves_demand(self, problem):
        router = PriceConsciousRouter(problem, 1500.0)
        rng = np.random.default_rng(0)
        demand = rng.random(problem.n_states) * 1e4
        prices = rng.random(problem.n_clusters) * 100
        alloc = router.allocate(demand, prices, relaxed_limits(problem))
        assert np.allclose(alloc.sum(axis=1), demand)

    def test_picks_cheapest_when_unconstrained(self, problem):
        router = PriceConsciousRouter(problem, 10_000.0, price_threshold=0.0)
        demand = np.full(problem.n_states, 100.0)
        prices = np.arange(9.0) * 10.0 + 10.0  # cluster 0 cheapest
        alloc = router.allocate(demand, prices, relaxed_limits(problem))
        assert np.allclose(alloc[:, 0], demand)

    def test_price_threshold_breaks_ties_by_distance(self, problem):
        # Clusters 0 (CA1) and 3 (NY) priced within the threshold:
        # an East Coast state must pick NY, a West Coast state CA1.
        router = PriceConsciousRouter(problem, 10_000.0, price_threshold=5.0)
        prices = np.full(9, 100.0)
        prices[0] = 50.0
        prices[3] = 53.0  # within $5 of the cheapest
        demand = np.zeros(problem.n_states)
        ny = problem.state_codes.index("NY")
        ca = problem.state_codes.index("CA")
        demand[ny] = demand[ca] = 100.0
        alloc = router.allocate(demand, prices, relaxed_limits(problem))
        assert alloc[ny, 3] == 100.0
        assert alloc[ca, 0] == 100.0

    def test_distance_threshold_respected(self, problem):
        router = PriceConsciousRouter(problem, 1000.0)
        prices = np.full(9, 100.0)
        tx1 = problem.deployment.index_of("TX1")
        prices[tx1] = 1.0  # Texas nearly free
        demand = np.zeros(problem.n_states)
        ma = problem.state_codes.index("MA")
        demand[ma] = 500.0
        alloc = router.allocate(demand, prices, relaxed_limits(problem))
        # Massachusetts is ~2700 km from Dallas: must NOT go there.
        assert alloc[ma, tx1] == 0.0

    def test_spills_at_capacity(self, problem):
        router = PriceConsciousRouter(problem, 10_000.0, price_threshold=0.0)
        demand = np.full(problem.n_states, 1000.0)
        prices = np.arange(9.0)
        limits = np.full(9, 10_000.0)
        limits[0] = 500.0  # cheapest cluster tiny
        alloc = router.allocate(demand, prices, limits)
        loads = alloc.sum(axis=0)
        assert loads[0] <= 500.0 + 1e-9
        assert np.allclose(alloc.sum(), demand.sum())

    def test_fast_path_matches_greedy_when_loose(self, problem):
        router = PriceConsciousRouter(problem, 1500.0)
        rng = np.random.default_rng(1)
        demand = rng.random(problem.n_states) * 1000
        prices = rng.random(9) * 80 + 20
        loose = router.allocate(demand, prices, relaxed_limits(problem))
        # Limits just above the realised loads: the greedy path must
        # produce the same (single-cluster-per-state) allocation.
        limits = loose.sum(axis=0) + 1.0
        tight = router.allocate(demand, prices, limits)
        assert np.allclose(loose, tight)

    def test_cheaper_prices_pull_traffic(self, problem):
        router = PriceConsciousRouter(problem, 2000.0)
        demand = np.full(problem.n_states, 1000.0)
        flat = np.full(9, 60.0)
        il = problem.deployment.index_of("IL")
        discounted = flat.copy()
        discounted[il] = 10.0
        base_alloc = router.allocate(demand, flat, relaxed_limits(problem))
        disc_alloc = router.allocate(demand, discounted, relaxed_limits(problem))
        assert disc_alloc[:, il].sum() > base_alloc[:, il].sum()
