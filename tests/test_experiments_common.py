"""Tests for repro.experiments.common (shared cached runners)."""

import numpy as np

from repro.experiments.common import (
    FigureResult,
    baseline_24day,
    caps_24day,
    default_dataset,
    default_problem,
    long_trace,
    trace_24day,
)


class TestCaching:
    def test_dataset_memoised(self):
        assert default_dataset() is default_dataset()

    def test_problem_memoised(self):
        assert default_problem() is default_problem()

    def test_trace_memoised(self):
        assert trace_24day() is trace_24day()


class TestDefaults:
    def test_dataset_covers_paper_range(self):
        dataset = default_dataset()
        assert dataset.calendar.n_hours == 1186 * 24
        assert len(dataset.hubs) == 29

    def test_trace_within_calendar(self):
        dataset = default_dataset()
        trace = trace_24day()
        assert trace.start >= dataset.calendar.start
        assert trace.time_axis()[-1] < dataset.calendar.end

    def test_long_trace_is_hourly_and_full_length(self):
        trace = long_trace()
        assert trace.step_seconds == 3600
        assert trace.n_steps == default_dataset().calendar.n_hours

    def test_caps_are_baseline_p95(self):
        assert np.allclose(caps_24day(), baseline_24day().percentiles_95())


class TestFigureResult:
    def test_text_rendering_with_rows_and_series(self):
        result = FigureResult(
            figure_id="figZZ",
            title="demo",
            headers=("A", "B"),
            rows=((1, 2.0),),
            series={"s": np.array([0.0, 1.0])},
            notes=("note here",),
        )
        text = result.to_text()
        assert "figZZ" in text
        assert "note here" in text
        assert "series s" in text
