"""Tests for repro.analysis.correlation."""

import pytest

from repro.analysis.correlation import correlation_summary, pairwise_correlations


@pytest.fixture(scope="module")
def pairs(small_dataset):
    return pairwise_correlations(small_dataset)


class TestPairwise:
    def test_all_pairs_once(self, pairs):
        assert len(pairs) == 29 * 28 // 2
        seen = {frozenset((p.hub_a, p.hub_b)) for p in pairs}
        assert len(seen) == len(pairs)

    def test_coefficients_valid(self, pairs):
        for p in pairs:
            assert -1.0 <= p.coefficient <= 1.0
            assert p.distance_km > 0.0

    def test_same_rto_flag(self, pairs):
        for p in pairs:
            assert p.same_rto == (p.rto_a == p.rto_b)

    def test_mutual_information_optional(self, small_dataset):
        pairs = pairwise_correlations(small_dataset, with_mutual_information=True)
        assert all(p.mutual_information is not None for p in pairs[:5])
        assert all(p.mutual_information >= 0.0 for p in pairs)


class TestSummary:
    def test_counts_add_up(self, pairs):
        summary = correlation_summary(pairs)
        assert summary["n_same_rto"] + summary["n_cross_rto"] == summary["n_pairs"]

    def test_medians_ordered(self, pairs):
        summary = correlation_summary(pairs)
        assert summary["same_rto_median"] > summary["cross_rto_median"]

    def test_fractions_in_unit_interval(self, pairs):
        summary = correlation_summary(pairs)
        assert 0.0 <= summary["same_rto_above_line"] <= 1.0
        assert 0.0 <= summary["cross_rto_below_line"] <= 1.0
