"""Tests for repro.energy.routing_energy (§5.2)."""

import pytest

from repro.energy.routing_energy import (
    CISCO_GSR_12008,
    RouterEnergyProfile,
    incremental_path_energy_joules,
    path_energy_joules,
    relative_routing_overhead,
)
from repro.errors import ConfigurationError


class TestProfile:
    def test_paper_average_energy_2mj(self):
        # "on the order of 2 mJ" per packet through a core router.
        avg = CISCO_GSR_12008.average_energy_per_packet_joules
        assert avg == pytest.approx(770.0 / 540_000.0)
        assert 1e-3 < avg < 3e-3

    def test_paper_incremental_energy_50uj(self):
        # "as low as a 50 uJ per medium-sized packet".
        inc = CISCO_GSR_12008.incremental_energy_per_packet_joules
        assert 2e-5 < inc < 8e-5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RouterEnergyProfile("x", watts=0.0, packets_per_second=1.0, idle_power_fraction=0.5)
        with pytest.raises(ConfigurationError):
            RouterEnergyProfile("x", watts=1.0, packets_per_second=1.0, idle_power_fraction=1.5)


class TestPathEnergy:
    def test_scales_linearly(self):
        one = path_energy_joules(100.0, 1)
        five = path_energy_joules(100.0, 5)
        assert five == pytest.approx(5.0 * one)

    def test_incremental_below_average(self):
        avg = path_energy_joules(1000.0, 3)
        inc = incremental_path_energy_joules(1000.0, 3)
        assert inc < avg

    def test_zero_hops_zero_energy(self):
        assert path_energy_joules(1000.0, 0) == 0.0

    def test_negative_hops_rejected(self):
        with pytest.raises(ConfigurationError):
            path_energy_joules(1.0, -1)


class TestOverheadClaim:
    def test_negligible_relative_to_endpoint(self):
        # §5.2's conclusion: the path-expansion energy is orders of
        # magnitude below the 1 kJ endpoint energy per request.
        overhead = relative_routing_overhead()
        assert overhead < 1e-5

    def test_even_average_cost_is_small(self):
        overhead = relative_routing_overhead(incremental=False)
        assert overhead < 1e-3
