"""Tests for the unified ``repro`` CLI and the figure orchestrator."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import artifacts
from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.orchestrator import (
    FigureSpec,
    resolve_figure_ids,
    run_figures,
)

#: Cheap, simulation-free figures for CLI round-trips.
CHEAP = ["fig01", "fig06"]


class TestArgParsing:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "repro" in capsys.readouterr().out

    def test_run_without_figures_is_usage_error(self, capsys):
        assert main(["run", "--no-store"]) == 2
        assert "no figures" in capsys.readouterr().err

    def test_run_unknown_figure(self, capsys):
        assert main(["run", "--no-store", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err
        assert "fig99" in err

    def test_diff_unknown_figure(self, capsys):
        assert main(["diff", "--no-store", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_artifacts_and_no_store_conflict(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig01", "--artifacts", "x", "--no-store"])

    def test_run_unknown_provider(self, capsys):
        assert main(["run", "--no-store", "fig01", "--provider", "bloomberg"]) == 2
        err = capsys.readouterr().err
        assert "unknown provider" in err
        assert "replay-smoke" in err

    def test_run_provider_data_error_is_a_clean_exit(self, capsys):
        # fig06 reports hubs the nine-hub replay tape cannot supply; the
        # resulting DataError must surface as a usage error, not a
        # traceback.
        assert main(["run", "--no-store", "fig06", "--provider", "replay-smoke"]) == 2
        assert "unknown market hub" in capsys.readouterr().err


class TestProvidersCommand:
    def test_providers_list(self, capsys):
        assert main(["providers", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("synthetic", "replay-smoke", "spiky-markets", "decorrelated-rtos"):
            assert name in out

    def test_providers_without_subcommand(self, capsys):
        assert main(["providers"]) == 2

    def test_run_with_provider_uses_a_distinct_artifact_key(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run", "--quiet", "fig01", "--artifacts", store]) == 0
        assert (
            main(
                ["run", "--quiet", "fig01", "--artifacts", store,
                 "--provider", "spiky-markets"]
            )
            == 0
        )
        figures = list((tmp_path / "store" / "figures").glob("*.json"))
        assert len(figures) == 2


class TestRunCommand:
    def test_run_prints_figure_text(self, capsys):
        assert main(["run", "--no-store", "fig01"]) == 0
        out = capsys.readouterr().out
        assert "Google" in out

    def test_quiet_suppresses_stdout(self, capsys):
        assert main(["run", "--no-store", "--quiet", "fig01"]) == 0
        captured = capsys.readouterr()
        assert "Google" not in captured.out
        assert "1 figure(s)" in captured.err

    def test_run_populates_store(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["run", "--quiet", "--artifacts", str(store_dir), "fig01"]) == 0
        store = artifacts.ArtifactStore(store_dir)
        assert store.has(artifacts.KIND_FIGURE, FigureSpec("fig01"))

    def test_warm_run_reuses_figure_artifact(self, tmp_path, capsys, monkeypatch):
        store_dir = str(tmp_path / "store")
        assert main(["run", "--quiet", "--artifacts", store_dir, "fig01"]) == 0
        # Poison the driver: a warm run must not call it.
        from repro.experiments import orchestrator

        monkeypatch.setattr(
            orchestrator,
            "_call_driver",
            lambda spec: pytest.fail("driver re-ran despite cached artifact"),
        )
        assert main(["run", "--quiet", "--artifacts", store_dir, "fig01"]) == 0

    def test_force_reruns_driver_in_refresh_mode(self, tmp_path, capsys, monkeypatch):
        store_dir = str(tmp_path / "store")
        assert main(["run", "--quiet", "--artifacts", store_dir, "fig01"]) == 0
        from repro.experiments import orchestrator

        seen = []
        real = orchestrator._call_driver
        monkeypatch.setattr(
            orchestrator,
            "_call_driver",
            lambda spec: seen.append(artifacts.refresh_mode()) or real(spec),
        )
        assert main(["run", "--quiet", "--force", "--artifacts", store_dir, "fig01"]) == 0
        # The driver ran again, with simulation-store reads suspended.
        assert seen == [True]
        assert artifacts.refresh_mode() is False


class TestListCommand:
    def test_list_names_all_figures(self, capsys):
        assert main(["list", "--no-store"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out
        assert "fig20" in out
        assert "fig02" not in out

    def test_list_marks_cached_figures(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        main(["run", "--quiet", "--artifacts", store_dir, "fig01"])
        capsys.readouterr()
        assert main(["list", "--artifacts", store_dir]) == 0
        out = capsys.readouterr().out
        fig01_line = next(line for line in out.splitlines() if line.startswith("fig01"))
        assert "*" in fig01_line


class TestDiffCommand:
    def test_update_then_match(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        goldens = str(tmp_path / "goldens")
        args = ["--artifacts", store, "--goldens", goldens]
        assert main(["diff", *CHEAP, *args, "--update"]) == 0
        assert main(["diff", *CHEAP, *args]) == 0
        out = capsys.readouterr().out
        assert "fig01: ok" in out

    def test_default_figure_set_comes_from_goldens_dir(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        goldens = str(tmp_path / "goldens")
        args = ["--artifacts", store, "--goldens", goldens]
        main(["diff", "fig01", *args, "--update"])
        capsys.readouterr()
        assert main(["diff", *args]) == 0
        out = capsys.readouterr().out
        assert "fig01: ok" in out
        assert "fig06" not in out

    def test_drift_fails(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        goldens_dir = tmp_path / "goldens"
        args = ["--artifacts", store, "--goldens", str(goldens_dir)]
        assert main(["diff", "fig01", *args, "--update"]) == 0
        golden_path = goldens_dir / "fig01.json"
        payload = json.loads(golden_path.read_text())
        key = next(iter(payload["summary"]))
        payload["summary"][key] += 1.0
        golden_path.write_text(json.dumps(payload))
        assert main(["diff", "fig01", *args]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out

    def test_missing_golden_fails(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        goldens = str(tmp_path / "empty")
        assert (main(["diff", "fig01", "--artifacts", store, "--goldens", goldens]) == 1)
        assert "no golden" in capsys.readouterr().out

    def test_no_goldens_no_figures_is_usage_error(self, tmp_path, capsys):
        rc = main(["diff", "--no-store", "--goldens", str(tmp_path / "nowhere")])
        assert rc == 2


class TestCleanCommand:
    def test_clean_empties_store(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(["run", "--quiet", "--artifacts", str(store_dir), "fig01"])
        store = artifacts.ArtifactStore(store_dir)
        assert len(list(store.entries())) == 1
        assert main(["clean", "--artifacts", str(store_dir)]) == 0
        assert list(store.entries()) == []


class TestOrchestrator:
    def test_resolve_all_is_sorted_registry(self):
        ids = resolve_figure_ids(None, True)
        assert ids == sorted(ids)
        assert "fig01" in ids and "fig20" in ids

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="fig99"):
            resolve_figure_ids(["fig01", "fig99"], False)

    def test_figure_spec_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            FigureSpec("fig02")

    def test_parallel_matches_serial(self, tmp_path):
        """--jobs N must produce numerically identical artifacts."""
        artifacts.configure(tmp_path / "serial")
        serial = run_figures(CHEAP, jobs=1)
        artifacts.configure(tmp_path / "parallel")
        parallel = run_figures(CHEAP, jobs=2)
        artifacts.reset()

        for s, p in zip(serial, parallel):
            assert s.figure_id == p.figure_id
            assert s.rows == p.rows
            assert s.summary == p.summary
            assert set(s.series) == set(p.series)
            for name in s.series:
                assert np.array_equal(s.series[name], p.series[name])

        # The on-disk artifacts must be byte-identical too.
        serial_files = {
            p.name: p.read_bytes()
            for p in (tmp_path / "serial" / "figures").glob("*.json")
        }
        parallel_files = {
            p.name: p.read_bytes()
            for p in (tmp_path / "parallel" / "figures").glob("*.json")
        }
        assert serial_files == parallel_files

    def test_seedless_driver_tolerates_seed(self):
        artifacts.configure(None)
        (result,) = run_figures(["fig01"], seed=2009)
        assert result.figure_id == "fig01"


class TestLegacyShim:
    """python -m repro.experiments keeps its original contract."""

    def test_list(self, capsys):
        from repro.experiments.__main__ import main as legacy_main

        assert legacy_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "fig20" in out

    def test_run_writes_no_files(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.__main__ import main as legacy_main

        monkeypatch.chdir(tmp_path)
        assert legacy_main(["fig01"]) == 0
        assert "Google" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []
