"""Property-based tests (hypothesis) on core invariants.

Routing conservation, limit safety, energy-model monotonicity, billing
percentile properties, and series algebra — the invariants every
experiment implicitly relies on.
"""

from datetime import datetime

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.energy.model import ClusterPowerModel, EnergyModelParams
from repro.markets.series import PriceSeries
from repro.routing.base import RoutingProblem, greedy_fill
from repro.routing.price import PriceConsciousRouter
from repro.traffic.clusters import akamai_like_deployment
from repro.traffic.percentile import billing_percentile

PROBLEM = RoutingProblem(akamai_like_deployment())

demand_arrays = arrays(
    np.float64,
    PROBLEM.n_states,
    elements=st.floats(0.0, 50_000.0, allow_nan=False),
)
price_arrays = arrays(
    np.float64,
    PROBLEM.n_clusters,
    elements=st.floats(-40.0, 500.0, allow_nan=False),
)


class TestRoutingInvariants:
    @given(demand=demand_arrays, prices=price_arrays, threshold=st.floats(0.0, 6000.0))
    @settings(max_examples=60, deadline=None)
    def test_price_router_conserves_demand(self, demand, prices, threshold):
        router = PriceConsciousRouter(PROBLEM, distance_threshold_km=threshold)
        limits = np.full(PROBLEM.n_clusters, np.inf)
        alloc = router.allocate(demand, prices, limits)
        assert np.allclose(alloc.sum(axis=1), demand, rtol=1e-9, atol=1e-6)
        assert np.all(alloc >= 0.0)

    @given(demand=demand_arrays, prices=price_arrays)
    @settings(max_examples=40, deadline=None)
    def test_price_router_respects_limits(self, demand, prices):
        router = PriceConsciousRouter(PROBLEM, distance_threshold_km=2000.0)
        # Limits sized to total demand plus headroom, split unevenly.
        total = demand.sum() + 1.0
        weights = np.linspace(1.0, 3.0, PROBLEM.n_clusters)
        limits = total * weights / weights.sum() * 1.5
        alloc = router.allocate(demand, prices, limits)
        assert np.all(alloc.sum(axis=0) <= limits + 1e-6)

    @given(demand=demand_arrays, prices=price_arrays)
    @settings(max_examples=40, deadline=None)
    def test_allocation_only_uses_candidates(self, demand, prices):
        router = PriceConsciousRouter(PROBLEM, distance_threshold_km=800.0)
        limits = np.full(PROBLEM.n_clusters, np.inf)
        alloc = router.allocate(demand, prices, limits)
        for s, cands in enumerate(router.candidate_sets):
            outside = np.setdiff1d(np.arange(PROBLEM.n_clusters), cands)
            assert np.all(alloc[s, outside] == 0.0)

    @given(
        demand=arrays(np.float64, 6, elements=st.floats(0.0, 100.0)),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_greedy_fill_conserves(self, demand, seed):
        rng = np.random.default_rng(seed)
        orders = [rng.permutation(4) for _ in range(6)]
        limits = np.full(4, demand.sum() + 1.0)
        alloc = greedy_fill(demand, orders, limits)
        assert np.allclose(alloc.sum(axis=1), demand)
        assert np.all(alloc.sum(axis=0) <= limits + 1e-9)


class TestEnergyInvariants:
    @given(
        idle=st.floats(0.0, 1.0),
        pue=st.floats(1.0, 3.0),
        u1=st.floats(0.0, 1.0),
        u2=st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_power_monotone_in_utilization(self, idle, pue, u1, u2):
        model = ClusterPowerModel(EnergyModelParams(idle, pue), 100)
        lo, hi = sorted((u1, u2))
        assert model.power_watts(lo) <= model.power_watts(hi) + 1e-9

    @given(idle=st.floats(0.0, 1.0), pue=st.floats(1.0, 3.0))
    @settings(max_examples=100, deadline=None)
    def test_elasticity_in_unit_interval(self, idle, pue):
        model = ClusterPowerModel(EnergyModelParams(idle, pue), 10)
        assert 0.0 <= model.elasticity() <= 1.0

    @given(
        idle=st.floats(0.0, 1.0),
        pue=st.floats(1.0, 3.0),
        u=st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_power_bounded_by_peak(self, idle, pue, u):
        params = EnergyModelParams(idle, pue, peak_power_watts=200.0)
        model = ClusterPowerModel(params, 50)
        peak = model.power_watts(1.0)
        assert model.power_watts(u) <= peak + 1e-9


class TestBillingInvariants:
    @given(samples=arrays(np.float64, (50, 3), elements=st.floats(0.0, 1e6, allow_nan=False)))
    @settings(max_examples=60, deadline=None)
    def test_percentile_bounded_by_extremes(self, samples):
        p95 = billing_percentile(samples)
        assert np.all(p95 <= samples.max(axis=0) + 1e-9)
        assert np.all(p95 >= samples.min(axis=0) - 1e-9)

    @given(
        samples=arrays(np.float64, (40, 2), elements=st.floats(0.0, 1e4, allow_nan=False)),
        scale=st.floats(0.1, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_percentile_scale_equivariant(self, samples, scale):
        base = billing_percentile(samples)
        scaled = billing_percentile(samples * scale)
        assert np.allclose(scaled, base * scale, rtol=1e-9, atol=1e-9)


class TestSeriesInvariants:
    @given(
        values=arrays(
            np.float64,
            st.integers(48, 200),
            elements=st.floats(-100.0, 2000.0, allow_nan=False),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_subtraction_antisymmetric(self, values):
        a = PriceSeries(datetime(2006, 1, 1), values)
        b = PriceSeries(datetime(2006, 1, 1), values[::-1].copy())
        assert np.allclose((a - b).values, -(b - a).values)

    @given(
        values=arrays(
            np.float64,
            st.integers(48, 96),
            elements=st.floats(0.0, 1000.0, allow_nan=False),
        ),
        steps=st.integers(0, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_shift_preserves_length_and_range(self, values, steps):
        series = PriceSeries(datetime(2006, 1, 1), values)
        shifted = series.shifted(steps)
        assert len(shifted) == len(series)
        assert shifted.values.min() >= values.min() - 1e-12
        assert shifted.values.max() <= values.max() + 1e-12

    @given(
        values=arrays(
            np.float64,
            st.integers(48, 240),
            elements=st.floats(0.0, 500.0, allow_nan=False),
        ),
        fraction=st.floats(0.0, 0.2),
    )
    @settings(max_examples=60, deadline=None)
    def test_trimming_shrinks_range(self, values, fraction):
        series = PriceSeries(datetime(2006, 1, 1), values)
        trimmed = series.trimmed(fraction)
        assert trimmed.size > 0
        assert trimmed.min() >= values.min() - 1e-12
        assert trimmed.max() <= values.max() + 1e-12
