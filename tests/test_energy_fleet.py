"""Tests for repro.energy.fleet (Fig. 1 estimates)."""

import pytest

from repro.energy.fleet import (
    DEFAULT_WHOLESALE_PRICE,
    PAPER_FLEETS,
    FleetAssumptions,
    annual_energy_mwh,
    estimate_fleet,
    google_search_energy_mwh,
)
from repro.errors import ConfigurationError


class TestFormula:
    def test_fully_idle_proportional_degenerate(self):
        # 0% idle, PUE 1, zero utilization -> zero energy.
        assert annual_energy_mwh(1000, 250.0, 0.0, 0.0, 1.0) == 0.0

    def test_always_peak(self):
        # 100% idle fraction: servers always draw peak regardless of U.
        low = annual_energy_mwh(100, 250.0, 1.0, 0.0, 1.0)
        high = annual_energy_mwh(100, 250.0, 1.0, 1.0, 1.0)
        assert low == pytest.approx(high)
        # 100 servers * 250 W * 8760 h = 219 MWh.
        assert low == pytest.approx(219.0, rel=1e-6)

    def test_pue_multiplies_overhead(self):
        base = annual_energy_mwh(100, 250.0, 0.675, 0.3, 1.0)
        with_overhead = annual_energy_mwh(100, 250.0, 0.675, 0.3, 2.0)
        overhead = annual_energy_mwh(100, 250.0, 0.0, 0.0, 2.0)
        assert with_overhead == pytest.approx(base + overhead)


class TestFig1Table:
    def test_akamai_estimate_matches_paper_band(self):
        # Paper: Akamai 40K servers ~ 1.7e5 MWh, ~$10M.
        akamai = next(f for f in PAPER_FLEETS if f.name == "Akamai")
        est = estimate_fleet(akamai)
        assert est.annual_mwh == pytest.approx(1.7e5, rel=0.15)
        assert est.annual_cost == pytest.approx(10e6, rel=0.15)

    def test_google_estimate_matches_paper_band(self):
        # Paper: Google 500K servers ~ 6.3e5 MWh, ~$38M.
        google = next(f for f in PAPER_FLEETS if f.name == "Google")
        est = estimate_fleet(google)
        assert est.annual_mwh == pytest.approx(6.3e5, rel=0.2)
        assert est.annual_cost == pytest.approx(38e6, rel=0.2)

    def test_ebay_estimate(self):
        # Paper: eBay 16K ~ 0.6e5 MWh, ~$3.7M.
        ebay = next(f for f in PAPER_FLEETS if f.name == "eBay")
        est = estimate_fleet(ebay)
        assert est.annual_mwh == pytest.approx(0.6e5, rel=0.25)

    def test_cost_scales_with_price(self):
        ebay = PAPER_FLEETS[0]
        cheap = estimate_fleet(ebay, 30.0)
        expensive = estimate_fleet(ebay, 90.0)
        assert expensive.annual_cost == pytest.approx(3.0 * cheap.annual_cost)

    def test_three_percent_of_google_exceeds_million(self):
        # §1: "A modest 3% reduction would therefore exceed a million
        # dollars every year."
        google = next(f for f in PAPER_FLEETS if f.name == "Google")
        est = estimate_fleet(google, DEFAULT_WHOLESALE_PRICE)
        assert 0.03 * est.annual_cost > 1e6


class TestValidation:
    def test_bad_assumptions(self):
        with pytest.raises(ConfigurationError):
            FleetAssumptions("x", 0)
        with pytest.raises(ConfigurationError):
            FleetAssumptions("x", 10, utilization=1.5)
        with pytest.raises(ConfigurationError):
            FleetAssumptions("x", 10, pue=0.5)


class TestSearchCrossCheck:
    def test_one_hundred_thousand_mwh_scale(self):
        # Paper: "search alone works out to 1e5 MWh in 2007".
        assert google_search_energy_mwh() == pytest.approx(1.2e5, rel=0.05)
