"""Tests for repro.routing.static."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.routing.base import RoutingProblem
from repro.routing.static import StaticSingleHubRouter, cheapest_cluster_index
from repro.traffic.clusters import akamai_like_deployment


@pytest.fixture(scope="module")
def problem():
    return RoutingProblem(akamai_like_deployment())


class TestCheapestIndex:
    def test_argmin(self, problem):
        means = np.array([50.0, 40.0, 60.0, 55.0, 35.0, 70.0, 65.0, 45.0, 52.0])
        assert cheapest_cluster_index(problem, means) == 4

    def test_shape_validation(self, problem):
        with pytest.raises(ConfigurationError):
            cheapest_cluster_index(problem, np.array([1.0, 2.0]))


class TestStaticRouter:
    def test_all_demand_to_target(self, problem):
        router = StaticSingleHubRouter(problem, 4)
        demand = np.arange(float(problem.n_states))
        alloc = router.allocate(demand, np.zeros(9), np.full(9, np.inf))
        assert np.allclose(alloc[:, 4], demand)
        assert np.allclose(np.delete(alloc, 4, axis=1), 0.0)

    def test_ignores_prices_and_limits(self, problem):
        router = StaticSingleHubRouter(problem, 0)
        demand = np.full(problem.n_states, 10.0)
        a = router.allocate(demand, np.zeros(9), np.full(9, np.inf))
        b = router.allocate(demand, np.full(9, 1e9), np.zeros(9))
        assert np.array_equal(a, b)

    def test_index_validation(self, problem):
        with pytest.raises(ConfigurationError):
            StaticSingleHubRouter(problem, 9)
        with pytest.raises(ConfigurationError):
            StaticSingleHubRouter(problem, -1)
