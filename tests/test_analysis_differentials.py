"""Tests for repro.analysis.differentials."""

from datetime import datetime

import numpy as np
import pytest

from repro.analysis.differentials import (
    differential_durations,
    differential_stats,
    duration_histogram,
    favourable_fractions,
    hour_of_day_profile,
    monthly_profile,
)
from repro.errors import ConfigurationError
from repro.markets.series import PriceSeries

START = datetime(2006, 1, 1)


def series(values, step=3600):
    return PriceSeries(START, np.asarray(values, dtype=float), step)


class TestStats:
    def test_moments(self):
        diff = series([0.0, 10.0, -10.0, 0.0])
        stats = differential_stats(diff)
        assert stats.mean == pytest.approx(0.0)
        assert stats.std == pytest.approx(np.std([0, 10, -10, 0]))
        assert stats.n_samples == 4


class TestFavourable:
    def test_fractions(self):
        # diff = A - B; positive means B cheaper.
        diff = series([20.0, 5.0, -5.0, -20.0, 0.0])
        frac = favourable_fractions(diff, threshold=10.0)
        assert frac["b_cheaper"] == pytest.approx(2 / 5)
        assert frac["a_cheaper"] == pytest.approx(2 / 5)
        assert frac["b_saves_over_threshold"] == pytest.approx(1 / 5)
        assert frac["a_saves_over_threshold"] == pytest.approx(1 / 5)


class TestHourOfDay:
    def test_profile_shape_and_values(self):
        # Deterministic daily pattern: hour h has value h, in UTC.
        values = np.tile(np.arange(24.0), 30)
        profile = hour_of_day_profile(series(values), utc_offset_hours=0)
        assert len(profile) == 24
        for row in profile:
            assert row["median"] == pytest.approx(row["hour"])
            assert row["q25"] == pytest.approx(row["hour"])

    def test_offset_shifts_axis(self):
        values = np.tile(np.arange(24.0), 30)
        est = hour_of_day_profile(series(values), utc_offset_hours=-5)
        # UTC hour 5 (value 5) is midnight EST.
        assert est[0]["median"] == pytest.approx(5.0)

    def test_requires_hourly(self):
        with pytest.raises(ConfigurationError):
            hour_of_day_profile(series(np.ones(100), step=300))


class TestMonthly:
    def test_profile_rows(self):
        hours = (31 + 28) * 24
        values = np.concatenate([np.full(31 * 24, 10.0), np.full(28 * 24, 30.0)])
        profile = monthly_profile(series(values[:hours]))
        assert len(profile) == 2
        assert profile[0]["median"] == pytest.approx(10.0)
        assert profile[1]["median"] == pytest.approx(30.0)
        assert profile[1]["month"] == 2.0


class TestDurations:
    def test_simple_runs(self):
        # +6 for 3h, quiet 2h, -6 for 2h.
        diff = series([6.0, 6.0, 6.0, 0.0, 0.0, -6.0, -6.0, 0.0])
        assert differential_durations(diff, threshold=5.0) == [3, 2]

    def test_reversal_splits_runs(self):
        diff = series([6.0, 6.0, -6.0, -6.0, -6.0])
        assert differential_durations(diff, threshold=5.0) == [2, 3]

    def test_sub_threshold_ignored(self):
        diff = series([4.0, 4.0, -4.0])
        assert differential_durations(diff, threshold=5.0) == []

    def test_run_at_end_counted(self):
        diff = series([0.0, 6.0, 6.0])
        assert differential_durations(diff, threshold=5.0) == [2]

    def test_histogram_time_weighted(self):
        durations = [1, 1, 3]
        hist = duration_histogram(durations, max_hours=5, total_hours=10)
        assert hist[0] == pytest.approx(0.2)  # 2 x 1h over 10h
        assert hist[2] == pytest.approx(0.3)  # 1 x 3h over 10h

    def test_histogram_folds_long_runs(self):
        hist = duration_histogram([100], max_hours=10, total_hours=100)
        assert hist[9] == pytest.approx(1.0)

    def test_histogram_validation(self):
        with pytest.raises(ConfigurationError):
            duration_histogram([1], max_hours=0)
        with pytest.raises(ConfigurationError):
            duration_histogram([1], total_hours=0)
