"""Tests for repro.sim.results."""

from datetime import datetime

import numpy as np
import pytest

from repro.energy import FULLY_ELASTIC, GOOGLE_LIKE, NO_POWER_MANAGEMENT
from repro.energy.model import ClusterPowerModel
from repro.errors import ConfigurationError
from repro.sim.results import DISTANCE_BIN_KM, DistanceProfile, SimulationResult


def make_result(loads, prices, capacities=None, servers=None):
    loads = np.asarray(loads, dtype=float)
    n_clusters = loads.shape[1]
    capacities = (
        np.asarray(capacities, dtype=float)
        if capacities is not None
        else np.full(n_clusters, 1000.0)
    )
    servers = (
        np.asarray(servers, dtype=float)
        if servers is not None
        else np.full(n_clusters, 10.0)
    )
    histogram = np.zeros(240)
    histogram[4] = loads.sum()
    return SimulationResult(
        start=datetime(2008, 12, 16),
        step_seconds=3600,
        cluster_labels=tuple(f"C{i}" for i in range(n_clusters)),
        capacities=capacities,
        server_counts=servers,
        loads=loads,
        paid_prices=np.asarray(prices, dtype=float),
        distance_histogram=histogram,
    )


class TestDistanceProfile:
    def test_mean_uses_bin_midpoints(self):
        histogram = np.zeros(10)
        histogram[2] = 4.0
        profile = DistanceProfile(histogram)
        assert profile.mean_km == pytest.approx(2.5 * DISTANCE_BIN_KM)

    def test_percentile(self):
        histogram = np.zeros(10)
        histogram[0] = 90.0
        histogram[9] = 10.0
        profile = DistanceProfile(histogram)
        assert profile.percentile_km(50.0) == pytest.approx(DISTANCE_BIN_KM)
        assert profile.percentile_km(99.0) == pytest.approx(10 * DISTANCE_BIN_KM)

    def test_empty(self):
        profile = DistanceProfile(np.zeros(5))
        assert profile.mean_km == 0.0
        assert profile.percentile_km(99.0) == 0.0

    def test_bad_percentile(self):
        with pytest.raises(ConfigurationError):
            DistanceProfile(np.ones(5)).percentile_km(0.0)


class TestEnergyAccounting:
    def test_energy_matches_power_model(self):
        result = make_result([[500.0, 0.0]], [[60.0, 60.0]])
        model = ClusterPowerModel(GOOGLE_LIKE, 10)
        expected_busy = model.energy_mwh(0.5, 3600.0)
        expected_idle = model.energy_mwh(0.0, 3600.0)
        energy = result.energy_mwh(GOOGLE_LIKE)
        assert energy[0, 0] == pytest.approx(expected_busy)
        assert energy[0, 1] == pytest.approx(expected_idle)

    def test_fully_elastic_idle_is_free(self):
        result = make_result([[0.0, 0.0]], [[60.0, 60.0]])
        assert result.total_energy_mwh(FULLY_ELASTIC) == 0.0
        assert result.total_cost(FULLY_ELASTIC) == 0.0

    def test_inelastic_cost_load_independent(self):
        idle = make_result([[0.0, 0.0]], [[60.0, 60.0]])
        busy = make_result([[1000.0, 1000.0]], [[60.0, 60.0]])
        params = NO_POWER_MANAGEMENT
        # 95% idle power: cost barely moves with load.
        ratio = busy.total_cost(params) / idle.total_cost(params)
        assert 1.0 <= ratio < 1.1

    def test_cost_is_energy_times_price(self):
        result = make_result([[500.0]], [[80.0]], capacities=[1000.0], servers=[10.0])
        energy = result.energy_mwh(GOOGLE_LIKE)[0, 0]
        assert result.total_cost(GOOGLE_LIKE) == pytest.approx(energy * 80.0)

    def test_savings_vs(self):
        base = make_result([[500.0]], [[100.0]])
        cheap = make_result([[500.0]], [[50.0]])
        assert cheap.savings_vs(base, GOOGLE_LIKE) == pytest.approx(0.5)
        assert cheap.normalized_cost(base, GOOGLE_LIKE) == pytest.approx(0.5)

    def test_utilization_clipped(self):
        result = make_result([[5000.0]], [[60.0]], capacities=[1000.0])
        assert result.utilization()[0, 0] == 1.0

    def test_percentiles(self):
        loads = np.tile(np.arange(100.0)[:, None], (1, 1))
        result = make_result(loads, np.full((100, 1), 60.0))
        # "lower" order statistic: the observed sample at index
        # floor(0.95 * 99) = 94, the billing convention.
        assert result.percentiles_95()[0] == pytest.approx(94.0)

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            make_result([[1.0, 2.0]], [[1.0]])
