"""Tests for repro.energy.model and repro.energy.params."""

import numpy as np
import pytest

from repro.energy.model import ClusterPowerModel, EnergyModelParams
from repro.energy.params import (
    FIG15_MODELS,
    FULLY_ELASTIC,
    GOOGLE_LIKE,
    NAMED_MODELS,
    NO_POWER_MANAGEMENT,
    OPTIMISTIC_FUTURE,
)
from repro.errors import ConfigurationError


class TestParams:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyModelParams(idle_fraction=-0.1, pue=1.0)
        with pytest.raises(ConfigurationError):
            EnergyModelParams(idle_fraction=1.1, pue=1.0)
        with pytest.raises(ConfigurationError):
            EnergyModelParams(idle_fraction=0.5, pue=0.9)
        with pytest.raises(ConfigurationError):
            EnergyModelParams(idle_fraction=0.5, pue=1.0, exponent=0.5)

    def test_idle_power(self):
        params = EnergyModelParams(idle_fraction=0.6, pue=1.0, peak_power_watts=200.0)
        assert params.idle_power_watts == pytest.approx(120.0)

    def test_describe(self):
        assert GOOGLE_LIKE.describe() == "(65% idle, 1.3 PUE)"

    def test_presets_exist(self):
        assert set(NAMED_MODELS) == {
            "fully-elastic",
            "optimistic-future",
            "google-like",
            "state-of-the-art",
            "no-power-management",
        }
        assert len(FIG15_MODELS) == 7


class TestPowerModel:
    def test_needs_servers(self):
        with pytest.raises(ConfigurationError):
            ClusterPowerModel(FULLY_ELASTIC, 0)

    def test_fully_elastic_zero_idle_power(self):
        model = ClusterPowerModel(FULLY_ELASTIC, 100)
        assert model.power_watts(0.0) == 0.0
        assert model.elasticity() == 0.0

    def test_peak_power_is_peak_times_pue_equivalent(self):
        # At u=1, V = (Ppeak - Pidle)*(2 - 1) so total per server is
        # Ppeak + (PUE-1)*Ppeak = PUE * Ppeak.
        params = EnergyModelParams(idle_fraction=0.5, pue=1.4, peak_power_watts=100.0)
        model = ClusterPowerModel(params, 10)
        assert model.power_watts(1.0) == pytest.approx(10 * 1.4 * 100.0)

    def test_monotone_in_utilization(self):
        model = ClusterPowerModel(GOOGLE_LIKE, 50)
        u = np.linspace(0.0, 1.0, 101)
        power = model.power_watts(u)
        assert np.all(np.diff(power) >= -1e-9)

    def test_concave_variable_term(self):
        # 2u - u^1.4 is concave: half-load draws more than half of the
        # full-load variable power (the Google study's empirical shape).
        model = ClusterPowerModel(FULLY_ELASTIC, 1)
        half = model.variable_power_watts(0.5)
        full = model.variable_power_watts(1.0)
        assert half > 0.5 * full

    def test_linear_variant(self):
        params = EnergyModelParams(idle_fraction=0.0, pue=1.0, exponent=1.0)
        model = ClusterPowerModel(params, 1)
        # 2u - u = u: exactly linear in utilization.
        assert model.variable_power_watts(0.3) == pytest.approx(
            0.3 * model.variable_power_watts(1.0)
        )

    def test_utilization_clipped(self):
        model = ClusterPowerModel(GOOGLE_LIKE, 10)
        assert model.power_watts(1.5) == model.power_watts(1.0)
        assert model.power_watts(-0.5) == model.power_watts(0.0)

    def test_elasticity_ordering_of_presets(self):
        # §6.2: elasticity gates savings; the presets must be ordered.
        def elasticity(params):
            return ClusterPowerModel(params, 1).elasticity()

        assert (
            elasticity(FULLY_ELASTIC)
            < elasticity(OPTIMISTIC_FUTURE)
            < elasticity(GOOGLE_LIKE)
            < elasticity(NO_POWER_MANAGEMENT)
        )

    def test_energy_scales_with_duration(self):
        model = ClusterPowerModel(GOOGLE_LIKE, 100)
        one_hour = model.energy_mwh(0.5, 3600.0)
        two_hours = model.energy_mwh(0.5, 7200.0)
        assert two_hours == pytest.approx(2.0 * one_hour)

    def test_energy_magnitude(self):
        # 1000 servers at 250 W peak, PUE 1.0, fully loaded, one hour
        # = 0.25 MWh * ... : exactly n * Ppeak * 1h.
        params = EnergyModelParams(idle_fraction=0.0, pue=1.0, peak_power_watts=250.0)
        model = ClusterPowerModel(params, 1000)
        assert model.energy_mwh(1.0, 3600.0) == pytest.approx(0.25)

    def test_fig15_models_span_elasticity_range(self):
        values = [ClusterPowerModel(p, 1).elasticity() for p in FIG15_MODELS]
        assert values == sorted(values)
        assert values[0] == 0.0
        assert values[-1] > 0.8
