"""Tests for repro.ext.carbon and repro.ext.weather."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ext.carbon import (
    EMISSION_FACTORS,
    RTO_GENERATION_MIX,
    CarbonConsciousRouter,
    GenerationMix,
    carbon_intensity_matrix,
)
from repro.ext.weather import CoolingModel, TemperatureModel, effective_price_matrix
from repro.markets.hubs import get_hub
from repro.markets.rto import RTO
from repro.routing.base import RoutingProblem
from repro.traffic.clusters import akamai_like_deployment


class TestGenerationMix:
    def test_shares_sum_to_one(self):
        for mix in RTO_GENERATION_MIX.values():
            total = mix.coal + mix.gas + mix.nuclear + mix.hydro + mix.wind
            assert total == pytest.approx(1.0)

    def test_all_rtos_covered(self):
        assert set(RTO_GENERATION_MIX) == set(RTO)

    def test_bad_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            GenerationMix(coal=0.5, gas=0.5, nuclear=0.5, hydro=0.0, wind=0.0)

    def test_coal_dirtiest(self):
        assert EMISSION_FACTORS["coal"] == max(EMISSION_FACTORS.values())


class TestCarbonIntensity:
    def test_matrix_aligned_and_positive(self, small_dataset):
        intensity = carbon_intensity_matrix(small_dataset)
        assert intensity.shape == small_dataset.price_matrix.shape
        assert np.all(intensity >= 1.0)

    def test_coal_regions_dirtier(self, small_dataset):
        intensity = carbon_intensity_matrix(small_dataset)
        miso = intensity[:, small_dataset.hub_column("MN")].mean()
        caiso = intensity[:, small_dataset.hub_column("NP15")].mean()
        assert miso > caiso  # 65% coal vs hydro/gas California

    def test_high_price_hours_dirtier(self, small_dataset):
        intensity = carbon_intensity_matrix(small_dataset)
        j = small_dataset.hub_column("NYC")
        prices = small_dataset.price_matrix[:, j]
        hot = prices > np.percentile(prices, 90)
        cold = prices < np.percentile(prices, 10)
        assert intensity[hot, j].mean() > intensity[cold, j].mean()

    def test_deterministic(self, small_dataset):
        a = carbon_intensity_matrix(small_dataset, seed=1)
        b = carbon_intensity_matrix(small_dataset, seed=1)
        assert np.array_equal(a, b)


class TestCarbonRouter:
    def test_routes_to_cleanest(self):
        problem = RoutingProblem(akamai_like_deployment())
        router = CarbonConsciousRouter(problem, 10_000.0, intensity_threshold=0.0)
        demand = np.full(problem.n_states, 10.0)
        intensity = np.linspace(800.0, 100.0, 9)  # cluster 8 cleanest
        alloc = router.allocate(demand, intensity, np.full(9, np.inf))
        assert np.allclose(alloc[:, 8], demand)


class TestWeather:
    def test_temperature_latitude_gradient(self, small_dataset):
        model = TemperatureModel()
        rng = np.random.default_rng(0)
        calendar = small_dataset.calendar
        north = model.series(calendar, get_hub("MN"), rng).mean()
        south = model.series(calendar, get_hub("ERCOT-H"), rng).mean()
        assert south > north

    def test_cooling_pue_monotone(self):
        cooling = CoolingModel()
        temps = np.array([-10.0, 10.0, 20.0, 35.0])
        pue = cooling.pue(temps)
        assert np.all(np.diff(pue) >= 0)
        assert pue[0] == cooling.pue_free
        assert pue[-1] == cooling.pue_mechanical

    def test_cooling_validation(self):
        with pytest.raises(ConfigurationError):
            CoolingModel(free_cooling_max_c=30.0, chiller_max_c=20.0)
        with pytest.raises(ConfigurationError):
            CoolingModel(pue_free=2.0, pue_mechanical=1.1)

    def test_effective_price_discounts_cold_sites(self, small_dataset):
        effective = effective_price_matrix(small_dataset)
        assert effective.shape == small_dataset.price_matrix.shape
        # The PUE multiplier never exceeds 1 (normalised by mechanical
        # PUE), so effective prices are bounded by raw prices wherever
        # prices are positive.
        positive = small_dataset.price_matrix > 0
        assert np.all(effective[positive] <= small_dataset.price_matrix[positive] + 1e-9)
