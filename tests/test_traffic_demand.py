"""Tests for repro.traffic.demand."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic.demand import DemandModel, DemandModelConfig


@pytest.fixture(scope="module")
def model():
    return DemandModel()


def hour_axis(days=7, step_minutes=5):
    steps = days * 24 * 60 // step_minutes
    hours = (np.arange(steps) * step_minutes / 60.0) % 24.0
    dow = ((np.arange(steps) * step_minutes / 60.0) // 24.0).astype(int) % 7
    return hours, dow


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DemandModelConfig(us_peak_hits=0.0)
        with pytest.raises(ConfigurationError):
            DemandModelConfig(diurnal_swing=0.5)
        with pytest.raises(ConfigurationError):
            DemandModelConfig(us_share_of_global=0.0)


class TestShares:
    def test_shares_sum_to_one(self, model):
        assert model.shares.sum() == pytest.approx(1.0)

    def test_california_largest(self, model):
        shares = dict(zip(model.state_codes, model.shares))
        assert max(shares, key=shares.get) == "CA"

    def test_49_contiguous_states(self, model):
        assert len(model.state_codes) == 49


class TestDiurnal:
    def test_shape_and_range(self, model):
        hours, _ = hour_axis(days=2)
        factors = model.diurnal_factor(hours)
        assert factors.shape == (len(hours), 49)
        assert factors.max() == pytest.approx(1.0, abs=1e-9)
        assert factors.min() == pytest.approx(1.0 / model.config.diurnal_swing, abs=0.01)

    def test_evening_peak_local_time(self, model):
        hours, _ = hour_axis(days=1)
        factors = model.diurnal_factor(hours)
        ma = list(model.state_codes).index("MA")
        # Massachusetts is UTC-5: local 21:00 is 02:00 UTC.
        peak_step = int(np.argmax(factors[:, ma]))
        peak_utc_hour = hours[peak_step]
        assert peak_utc_hour == pytest.approx((21 + 5) % 24, abs=1.0)

    def test_time_zone_offset_between_coasts(self, model):
        hours, _ = hour_axis(days=1)
        factors = model.diurnal_factor(hours)
        ma = list(model.state_codes).index("MA")
        ca = list(model.state_codes).index("CA")
        lag = np.argmax(factors[:, ca]) - np.argmax(factors[:, ma])
        # California peaks 3 hours later in absolute time.
        assert lag * 5 / 60.0 == pytest.approx(3.0, abs=0.5)


class TestSampling:
    def test_demand_positive_and_shaped(self, model):
        hours, dow = hour_axis(days=7)
        rng = np.random.default_rng(0)
        demand = model.sample(hours, dow, rng)
        assert demand.shape == (len(hours), 49)
        assert np.all(demand > 0)
        total = demand.sum(axis=1)
        assert total.max() < 2.5 * model.config.us_peak_hits
        assert total.max() > 0.7 * model.config.us_peak_hits

    def test_weekend_lower(self):
        model = DemandModel(DemandModelConfig(noise_sigma=0.0, flash_rate_per_week=0.0))
        hours, dow = hour_axis(days=14)
        rng = np.random.default_rng(1)
        demand = model.sample(hours, dow, rng).sum(axis=1)
        weekday = demand[dow < 5].mean()
        weekend = demand[dow >= 5].mean()
        assert weekend < weekday

    def test_deterministic_given_seed(self, model):
        hours, dow = hour_axis(days=2)
        a = model.sample(hours, dow, np.random.default_rng(7))
        b = model.sample(hours, dow, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_flash_crowds_raise_peak(self):
        calm_cfg = DemandModelConfig(noise_sigma=0.0, flash_rate_per_week=0.0)
        flashy_cfg = DemandModelConfig(noise_sigma=0.0, flash_rate_per_week=20.0, flash_peak=2.0)
        hours, dow = hour_axis(days=7)
        calm = DemandModel(calm_cfg).sample(hours, dow, np.random.default_rng(3))
        flashy = DemandModel(flashy_cfg).sample(hours, dow, np.random.default_rng(3))
        assert flashy.max() > calm.max()

    def test_mismatched_axes_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.sample(np.zeros(10), np.zeros(5, dtype=int), np.random.default_rng(0))


class TestNonUS:
    def test_global_ratio(self, model):
        hours, _ = hour_axis(days=7)
        rng = np.random.default_rng(4)
        non_us = model.non_us_demand(hours, rng)
        assert non_us.shape == hours.shape
        assert np.all(non_us > 0)
        # Peak non-US traffic sized so global ~ US / us_share.
        expected_peak = model.config.us_peak_hits * (
            1 - model.config.us_share_of_global
        ) / model.config.us_share_of_global
        assert non_us.max() == pytest.approx(expected_peak, rel=0.01)

    def test_flatter_than_us(self, model):
        hours, dow = hour_axis(days=7)
        rng = np.random.default_rng(5)
        non_us = model.non_us_demand(hours, rng)
        us = model.sample(hours, dow, np.random.default_rng(5)).sum(axis=1)
        assert (non_us.min() / non_us.max()) > (us.min() / us.max())
