"""Tests for the campaign pipeline: planner, reducers, resume, shards."""

from __future__ import annotations

from datetime import datetime
from pathlib import Path

import pytest

from repro import artifacts, scenarios, sweeps
from repro.errors import ConfigurationError
from repro.scenarios.spec import MarketSpec, RouterSpec, Scenario, TraceSpec
from repro.sweeps import executor, streaming
from repro.sweeps.aggregate import aggregate
from repro.sweeps.checkpoint import CampaignCheckpoint, campaign_status
from repro.sweeps.planner import plan_groups, resolve_group_target
from repro.sweeps.shards import merge_sweep, parse_shard, shard_owns
from repro.sweeps.spec import SweepAxis, SweepSpec, expand, iter_points
from repro.sweeps.metrics import point_metrics


def _base(name: str, n_steps: int = 12) -> Scenario:
    return Scenario(
        name=name,
        market=MarketSpec(start=datetime(2008, 11, 1), months=2, seed=7),
        trace=TraceSpec(kind="five-minute", start=datetime(2008, 12, 1), n_steps=n_steps, seed=7),
        router=RouterSpec.of("price", distance_threshold_km=1500.0),
    )


#: Four cells x two trace-seeded replicas on one shared market: with a
#: group target of 2 the planner flushes one group per cell, giving the
#: multi-group campaign shape the resume and shard tests need while
#: each point stays a 12-step simulation.
QUAD = SweepSpec(
    name="quad-campaign",
    description="four-cell campaign micro sweep",
    base=_base("quad-base"),
    axes=(
        SweepAxis(name="distance_threshold_km", values=(0.0, 1500.0), target="router"),
        SweepAxis(name="follow_95_5", values=(False, True)),
    ),
    n_replicas=2,
    reseed=("trace",),
    metrics=("savings_pct",),
)


def _fresh(tmp_path, name="store"):
    store = artifacts.configure(tmp_path / name)
    scenarios.clear_caches()
    return store


def _sweep_bytes(root: Path) -> dict[str, bytes]:
    return {p.name: p.read_bytes() for p in sorted(Path(root, "sweeps").glob("*.json"))}


class TestPlanner:
    def test_partition_is_deterministic_and_covers_every_point(self):
        for name in ("smoke-grid", "joint-penalty-grid", "provider-grid"):
            spec = sweeps.get(name)
            first = list(plan_groups(spec))
            second = list(plan_groups(spec))
            assert [g.point_indices for g in first] == [g.point_indices for g in second]
            assert [g.index for g in first] == list(range(len(first)))
            covered = sorted(i for g in first for i in g.point_indices)
            assert covered == list(range(spec.n_points))

    def test_small_buckets_reproduce_the_eager_grouping(self):
        spec = sweeps.get("smoke-grid")
        planned = [list(g.point_indices) for g in plan_groups(spec)]
        eager = [
            [p.index for p in bucket] for bucket in sweeps.group_points(expand(spec))
        ]
        assert planned == eager

    def test_cells_never_split_across_groups(self):
        spec = sweeps.get("joint-penalty-grid")
        for target in (1, 2, 4, 16):
            for group in plan_groups(spec, target):
                cells = {}
                for point in group.points:
                    cells.setdefault(point.cell_index, []).append(point.replica)
                for replicas in cells.values():
                    assert replicas == list(range(spec.n_replicas))

    def test_group_target_bounds_group_size(self):
        spec = QUAD
        sizes = [len(g.points) for g in plan_groups(spec, 2)]
        assert sizes == [2, 2, 2, 2]
        assert sweeps.count_groups(spec, 2) == 4

    def test_lazy_expansion_matches_eager(self):
        spec = sweeps.get("joint-penalty-grid")
        assert list(iter_points(spec)) == expand(spec)

    def test_group_target_validation(self):
        assert resolve_group_target(None) == sweeps.DEFAULT_GROUP_POINTS
        with pytest.raises(ConfigurationError):
            resolve_group_target(0)


class TestStreamingReducers:
    @staticmethod
    def _fake_metrics(spec):
        return {
            p.index: {m: float(p.index * 10 + i) for i, m in enumerate(spec.metrics)}
            for p in iter_points(spec)
        }

    def test_finalize_matches_aggregate_bitwise(self):
        spec = sweeps.get("smoke-grid")
        metrics = self._fake_metrics(spec)
        points = expand(spec)
        reference = aggregate(spec, points, metrics)
        states = streaming.reduce_points(points, metrics, spec.metrics)
        assert streaming.finalize(spec, states).to_json_dict() == reference.to_json_dict()

    def test_merge_is_independent_of_group_completion_order(self):
        spec = QUAD
        metrics = self._fake_metrics(spec)
        groups = list(plan_groups(spec, 2))
        per_group = [
            streaming.reduce_points(g.points, metrics, spec.metrics) for g in groups
        ]
        forward: dict[int, streaming.CellState] = {}
        for states in per_group:
            streaming.merge_cell_states(forward, states)
        backward: dict[int, streaming.CellState] = {}
        for states in reversed(per_group):
            streaming.merge_cell_states(backward, states)
        fwd = streaming.finalize(spec, forward).to_json_dict()
        assert fwd == streaming.finalize(spec, backward).to_json_dict()

    def test_checkpoint_codec_round_trips_exactly(self):
        spec = QUAD
        metrics = self._fake_metrics(spec)
        states = streaming.reduce_points(expand(spec), metrics, spec.metrics)
        decoded = streaming.decode_states(streaming.encode_states(states))
        assert streaming.finalize(spec, states).to_json_dict() == (
            streaming.finalize(spec, decoded).to_json_dict()
        )

    def test_duplicate_replica_slots_are_rejected(self):
        state = streaming.MetricState()
        state.update(0, 1.0)
        with pytest.raises(ConfigurationError):
            state.update(0, 2.0)
        other = streaming.MetricState()
        other.update(0, 3.0)
        with pytest.raises(ConfigurationError):
            state.merge(other)

    def test_finalize_rejects_incomplete_state(self):
        spec = QUAD
        metrics = self._fake_metrics(spec)
        states = streaming.reduce_points(expand(spec), metrics, spec.metrics)
        del states[0]
        with pytest.raises(ConfigurationError):
            streaming.finalize(spec, states)


class TestRefreshStatePreserved:
    def test_forced_group_restores_prior_refresh_flag(self, tmp_path):
        """A forced group must not clobber a caller's refresh mode."""
        _fresh(tmp_path)
        try:
            point = next(iter_points(QUAD))
            group = [(point.index, point.scenario, point.energy)]
            artifacts.set_refresh(True)
            executor._run_group(group, force=True)
            assert artifacts.refresh_mode() is True
            artifacts.set_refresh(False)
            executor._run_group(group, force=True)
            assert artifacts.refresh_mode() is False
        finally:
            artifacts.reset()
            scenarios.clear_caches()


class TestCrashResume:
    def test_resume_after_kill_is_byte_identical(self, tmp_path):
        uninterrupted = _fresh(tmp_path, "reference")
        try:
            sweeps.run_sweep(QUAD, jobs=1, group_target=2)
            reference = _sweep_bytes(uninterrupted.root)

            store = _fresh(tmp_path, "resumed")
            calls = {"n": 0}
            real = executor._run_group

            def dies_mid_campaign(group, force):
                calls["n"] += 1
                if calls["n"] == 3:
                    raise KeyboardInterrupt("killed mid-run")
                return real(group, force)

            executor._run_group = dies_mid_campaign
            try:
                with pytest.raises(KeyboardInterrupt):
                    sweeps.run_sweep(QUAD, jobs=1, group_target=2)
            finally:
                executor._run_group = real

            banked = list(store.root.glob("campaigns/*/group-*.json"))
            assert len(banked) == 2, "two groups should be banked before the kill"
            status = campaign_status(store, QUAD)
            assert status == (2, 4, 2)

            # Resume: only the two missing groups are recomputed.
            scenarios.clear_caches()
            recomputed = {"n": 0}

            def counting(group, force):
                recomputed["n"] += 1
                return real(group, force)

            executor._run_group = counting
            try:
                sweeps.run_sweep(QUAD, jobs=1, group_target=2)
            finally:
                executor._run_group = real
            assert recomputed["n"] == 2
            assert _sweep_bytes(store.root) == reference
            assert campaign_status(store, QUAD) is None, "checkpoint discarded"
        finally:
            artifacts.reset()
            scenarios.clear_caches()

    def test_force_discards_banked_groups(self, tmp_path):
        store = _fresh(tmp_path)
        try:
            checkpoint = CampaignCheckpoint(store, QUAD, 2)
            checkpoint.write_manifest(4)
            group = next(iter(plan_groups(QUAD, 2)))
            checkpoint.bank(group, {})
            recomputed = {"n": 0}
            real = executor._run_group

            def counting(g, force):
                recomputed["n"] += 1
                return real(g, force)

            executor._run_group = counting
            try:
                sweeps.run_sweep(QUAD, jobs=1, group_target=2, force=True)
            finally:
                executor._run_group = real
            assert recomputed["n"] == 4, "force must recompute every group"
        finally:
            artifacts.reset()
            scenarios.clear_caches()


class TestShards:
    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard(" 3/8 ") == (3, 8)
        for bad in ("2/2", "a/2", "1", "-1/2", "1/0"):
            with pytest.raises(ConfigurationError):
                parse_shard(bad)
        assert shard_owns(None, 5)
        assert shard_owns((1, 2), 3)
        assert not shard_owns((1, 2), 2)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_two_shards_merge_bitwise_equal_to_whole_run(self, tmp_path, jobs):
        single = _fresh(tmp_path, f"single-{jobs}")
        try:
            sweeps.run_sweep(QUAD, jobs=jobs, group_target=2)
            reference = _sweep_bytes(single.root)

            sharded = _fresh(tmp_path, f"sharded-{jobs}")
            assert sweeps.run_sweep(QUAD, jobs=jobs, group_target=2, shard=(0, 2)) is None
            scenarios.clear_caches()
            assert sweeps.run_sweep(QUAD, jobs=jobs, group_target=2, shard=(1, 2)) is None
            scenarios.clear_caches()
            merge_sweep(QUAD, group_target=2)
            assert _sweep_bytes(sharded.root) == reference
        finally:
            artifacts.reset()
            scenarios.clear_caches()

    def test_merge_from_separate_shard_stores(self, tmp_path):
        single = _fresh(tmp_path, "single")
        try:
            sweeps.run_sweep(QUAD, jobs=1, group_target=2)
            reference = _sweep_bytes(single.root)

            other = _fresh(tmp_path, "machine-b")
            assert sweeps.run_sweep(QUAD, jobs=1, group_target=2, shard=(1, 2)) is None

            mine = _fresh(tmp_path, "machine-a")
            assert sweeps.run_sweep(QUAD, jobs=1, group_target=2, shard=(0, 2)) is None
            merge_sweep(QUAD, group_target=2, extra_roots=(other.root,))
            assert _sweep_bytes(mine.root) == reference
        finally:
            artifacts.reset()
            scenarios.clear_caches()

    def test_merge_of_incomplete_campaign_is_an_error(self, tmp_path):
        _fresh(tmp_path)
        try:
            assert sweeps.run_sweep(QUAD, jobs=1, group_target=2, shard=(0, 2)) is None
            with pytest.raises(ConfigurationError, match="incomplete"):
                merge_sweep(QUAD, group_target=2)
        finally:
            artifacts.reset()
            scenarios.clear_caches()

    def test_shard_without_store_is_an_error(self):
        artifacts.configure(None)
        try:
            with pytest.raises(ConfigurationError, match="store"):
                sweeps.run_sweep(QUAD, jobs=1, shard=(0, 2))
        finally:
            artifacts.reset()


class TestCampaignCli:
    @pytest.fixture
    def quad_registered(self, monkeypatch):
        monkeypatch.setitem(sweeps.REGISTRY, QUAD.name, QUAD)
        return QUAD

    def test_shard_run_then_merge_round_trip(self, tmp_path, capsys, quad_registered):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        base = ["--artifacts", store_dir, "--group-size", "2", "quad-campaign"]
        assert main(["sweep", "run", "--quiet", "--shard", "0/2", *base]) == 0
        assert "banked" in capsys.readouterr().err
        assert main(["sweep", "run", "--quiet", "--shard", "1/2", *base]) == 0
        capsys.readouterr()
        assert main(["sweep", "merge", "--quiet", *base]) == 0
        assert "merged" in capsys.readouterr().err
        store = artifacts.ArtifactStore(tmp_path / "store")
        assert store.has(artifacts.KIND_SWEEP, QUAD)

    def test_merge_incomplete_exits_nonzero(self, tmp_path, capsys, quad_registered):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        base = ["--artifacts", store_dir, "--group-size", "2", "quad-campaign"]
        assert main(["sweep", "run", "--quiet", "--shard", "0/2", *base]) == 0
        capsys.readouterr()
        assert main(["sweep", "merge", "--quiet", *base]) == 1
        assert "incomplete" in capsys.readouterr().err

    def test_bad_shard_spec_is_usage_error(self, capsys, quad_registered):
        from repro.cli import main

        rc = main(["sweep", "run", "--no-store", "--shard", "2/2", "quad-campaign"])
        assert rc == 2
        assert "shard" in capsys.readouterr().err

    def test_list_reports_resumable_checkpoint(self, tmp_path, capsys, quad_registered):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        args = ["--artifacts", store_dir, "--group-size", "2", "quad-campaign"]
        assert main(["sweep", "run", "--quiet", "--shard", "0/2", *args]) == 0
        capsys.readouterr()
        assert main(["sweep", "list", "--artifacts", store_dir]) == 0
        out = capsys.readouterr().out
        line = next(ln for ln in out.splitlines() if ln.startswith("quad-campaign"))
        assert "checkpoint: 2/4 groups" in line
        assert "resumable" in line


class TestDatasetKindHousekeeping:
    def test_clean_covers_datasets_and_campaigns(self, tmp_path):
        store = _fresh(tmp_path)
        try:
            assert sweeps.run_sweep(QUAD, jobs=1, group_target=2, shard=(0, 2)) is None
            assert list(store.root.glob("datasets/*.json"))
            assert list(store.root.glob("campaigns/*/group-*.json"))
            kinds = {e.kind for e in store.entries()}
            assert artifacts.KIND_DATASET in kinds
            assert artifacts.KIND_CAMPAIGN in kinds
            assert store.clear() > 0
            assert list(store.entries()) == []
            assert not list(store.root.glob("campaigns/*"))
        finally:
            artifacts.reset()
            scenarios.clear_caches()
