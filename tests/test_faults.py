"""Deterministic fault injection: plans, the session wrapper, chaos legs.

The replay contract under test: every fault trigger is a pure function
of ``(plan.seed, fault, step)``, so a plan fires the same faults at the
same cumulative steps no matter how the micro-batcher slices the load —
and the steps that *are* served stay bit-identical to an offline replay.
The server-level tests pin the backpressure half of the chaos matrix:
saturation yields 429s whose stats buckets reconcile, and an exceeded
drain deadline fails stragglers cleanly instead of stranding them.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro import scenarios
from repro.errors import ConfigurationError
from repro.faults import (
    ENV_FAULTS,
    FaultPlan,
    FaultSpec,
    FaultySession,
    InjectedFaultError,
    wrap_session,
)
from repro.serve import HttpClient, RoutingServer, ServerConfig

SCENARIO = "serve-smoke"

REPO_ROOT = Path(__file__).resolve().parents[1]


class _FakeSession:
    """The minimal feeding interface, with call-shape bookkeeping."""

    def __init__(self) -> None:
        self.steps_fed = 0
        self.batch_sizes: list[int] = []

    def feed(self, demand):
        rows = np.atleast_2d(np.asarray(demand, dtype=float))
        self.batch_sizes.append(rows.shape[0])
        self.steps_fed += rows.shape[0]
        return rows * 2.0


# -- specs and plans -----------------------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ConfigurationError, match="unknown fault kind"):
        FaultSpec(kind="meteor_strike", step=0)
    # Session kinds need exactly one schedule.
    with pytest.raises(ConfigurationError, match="exactly one"):
        FaultSpec(kind="provider_error")
    with pytest.raises(ConfigurationError, match="exactly one"):
        FaultSpec(kind="provider_error", step=1, every=2)
    with pytest.raises(ConfigurationError, match="non-negative"):
        FaultSpec(kind="crash_at_step", step=-1)
    with pytest.raises(ConfigurationError, match="at least 1"):
        FaultSpec(kind="provider_delay", every=0, delay_ms=1.0)
    with pytest.raises(ConfigurationError, match="probability"):
        FaultSpec(kind="provider_error", probability=1.5)
    with pytest.raises(ConfigurationError, match="delay_ms"):
        FaultSpec(kind="provider_delay", step=0, delay_ms=-1.0)
    # Client-side kinds are schedule-free.
    FaultSpec(kind="slow_client", delay_ms=10.0)
    FaultSpec(kind="abort_client")


def test_fires_at_is_a_pure_function_of_seed_and_step():
    once = FaultSpec(kind="provider_error", step=7)
    assert [once.fires_at(t, seed=1) for t in range(10)] == [t == 7 for t in range(10)]

    periodic = FaultSpec(kind="provider_delay", every=3, delay_ms=1.0)
    assert [t for t in range(10) if periodic.fires_at(t, seed=1)] == [0, 3, 6, 9]

    coin = FaultSpec(kind="provider_error", probability=0.3)
    draws = [coin.fires_at(t, seed=42) for t in range(400)]
    # Deterministic replay: the same (seed, step) pairs fire identically.
    assert draws == [coin.fires_at(t, seed=42) for t in range(400)]
    # A different seed is a different schedule (with p=0.3 over 400
    # steps, collision of the full vectors is impossible in practice).
    assert draws != [coin.fires_at(t, seed=43) for t in range(400)]
    assert 0.15 < sum(draws) / len(draws) < 0.45


def test_plan_round_trips_through_json_and_env():
    plan = FaultPlan(
        seed=99,
        faults=(
            FaultSpec(kind="provider_delay", every=2, delay_ms=5.0, shard=1),
            FaultSpec(kind="crash_at_step", step=11),
            FaultSpec(kind="abort_client"),
        ),
    )
    assert FaultPlan.from_json(plan.to_json()) == plan

    environ: dict[str, str] = {}
    plan.to_env(environ)
    assert ENV_FAULTS in environ
    assert FaultPlan.from_env(environ) == plan
    FaultPlan.clear_env(environ)
    assert FaultPlan.from_env(environ) is None

    with pytest.raises(ConfigurationError, match="malformed fault plan"):
        FaultPlan.from_json("{not json")
    # A structurally valid plan carrying an invalid spec surfaces the
    # spec's own validation error.
    with pytest.raises(ConfigurationError, match="exactly one"):
        FaultPlan.from_json('{"faults": [{"kind": "provider_error"}]}')


def test_plan_selects_faults_by_shard_and_side():
    everywhere = FaultSpec(kind="provider_delay", every=1, delay_ms=1.0)
    only_one = FaultSpec(kind="crash_at_step", step=3, shard=1)
    client_side = FaultSpec(kind="slow_client", delay_ms=10.0)
    plan = FaultPlan(seed=0, faults=(everywhere, only_one, client_side))

    assert plan.session_faults(shard=0) == (everywhere,)
    assert plan.session_faults(shard=1) == (everywhere, only_one)
    assert plan.client_faults() == (client_side,)


def test_wrap_session_is_identity_when_nothing_applies():
    session = _FakeSession()
    assert wrap_session(session, None) is session
    client_only = FaultPlan(seed=0, faults=(FaultSpec(kind="abort_client"),))
    assert wrap_session(session, client_only) is session
    other_shard = FaultPlan(
        seed=0, faults=(FaultSpec(kind="crash_at_step", step=0, shard=3),)
    )
    assert wrap_session(session, other_shard, shard=0) is session
    assert isinstance(wrap_session(session, other_shard, shard=3), FaultySession)


# -- the session wrapper -------------------------------------------------------


def test_injected_error_fires_once_and_consumes_no_step():
    session = _FakeSession()
    plan = FaultPlan(seed=5, faults=(FaultSpec(kind="provider_error", step=2),))
    faulty = wrap_session(session, plan)
    rows = np.arange(12.0).reshape(4, 3)

    faulty.feed(rows[:2])
    assert session.steps_fed == 2
    # The batch carrying step 2 is poisoned before the engine runs...
    with pytest.raises(InjectedFaultError, match="step 2"):
        faulty.feed(rows[2:])
    assert session.steps_fed == 2  # ...and consumed nothing.
    # One-shot: the retried batch routes clean, bit-identical rows.
    out = faulty.feed(rows[2:])
    assert session.steps_fed == 4
    assert np.array_equal(out, rows[2:] * 2.0)


def test_error_schedule_is_stable_under_batch_slicing():
    import re

    rows = np.arange(27.0).reshape(9, 3)

    def error_steps(chunks):
        session = _FakeSession()
        plan = FaultPlan(seed=1, faults=(FaultSpec(kind="provider_error", every=4),))
        faulty = wrap_session(session, plan)
        hit = []
        t = 0
        for k in chunks:
            try:
                faulty.feed(rows[t : t + k])
            except InjectedFaultError as exc:
                hit.append(int(re.search(r"step (\d+)", str(exc)).group(1)))
                faulty.feed(rows[t : t + k])  # one-shot: retry succeeds
            t += k
        assert session.steps_fed == 9
        return hit

    # Steps 0, 4, 8 fire no matter how the load is sliced into batches;
    # a batch covering several fault steps is poisoned once (reported at
    # the first), because one provider outage fails one feed call.
    assert error_steps([9]) == [0]
    assert error_steps([1] * 9) == [0, 4, 8]
    assert error_steps([3, 3, 3]) == [0, 4, 8]
    assert error_steps([5, 4]) == [0, 8]  # 0 and 4 ride the first batch


def test_delay_fault_delegates_bit_identically():
    plain, delayed = _FakeSession(), _FakeSession()
    plan = FaultPlan(
        seed=3, faults=(FaultSpec(kind="provider_delay", every=2, delay_ms=1.0),)
    )
    faulty = wrap_session(delayed, plan)
    rows = np.arange(18.0).reshape(6, 3)
    assert np.array_equal(faulty.feed(rows), plain.feed(rows))
    assert faulty.step(rows[0]).shape == rows[0].shape  # scalar path delegates too
    # Attribute access passes through to the wrapped session.
    assert faulty.steps_fed == delayed.steps_fed == 7
    assert faulty.wrapped is delayed


def test_crash_at_step_exits_like_kill_nine():
    code = textwrap.dedent(
        """
        import numpy as np
        from repro.faults import FaultPlan, FaultSpec, wrap_session

        class S:
            steps_fed = 0
            def feed(self, demand):
                return demand

        plan = FaultPlan(seed=0, faults=(FaultSpec(kind="crash_at_step", step=1),))
        s = wrap_session(S(), plan)
        s.feed(np.zeros((1, 3)))  # step 0: survives
        S.steps_fed = 1
        s.feed(np.zeros((1, 3)))  # step 1: os._exit(137), no cleanup
        print("survived")
        """
    )
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    proc = subprocess.run(
        [sys.executable, "-c", code],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 137
    assert "survived" not in proc.stdout


# -- server-level chaos legs ---------------------------------------------------


def _rows(n: int) -> np.ndarray:
    scenario = scenarios.get(SCENARIO)
    return scenarios.trace(scenario.trace, scenario.market).demand[:n]


def test_saturated_server_returns_429s_with_reconciling_stats():
    """Queue saturation: 429 + retry hint, and every request lands in
    exactly one stats bucket (the acceptance reconciliation)."""
    n = 16
    rows = _rows(n)
    plan = FaultPlan(
        seed=7, faults=(FaultSpec(kind="provider_delay", every=1, delay_ms=20.0),)
    )

    async def drive():
        session = wrap_session(scenarios.open_session(scenarios.get(SCENARIO), n_steps=n), plan)
        server = RoutingServer(
            session,
            ServerConfig(
                host="127.0.0.1", port=0, window_ms=0.0, max_batch=1,
                max_queue=2, scenario=SCENARIO,
            ),
        )
        await server.start()
        try:
            clients = [HttpClient("127.0.0.1", server.port) for _ in range(8)]
            for c in clients:
                await c.connect()
            try:
                outcomes = await asyncio.gather(
                    *(
                        clients[i % 8].request(
                            "POST", "/route", {"demand": rows[i].tolist()}
                        )
                        for i in range(n)
                    )
                )
                _, stats = await clients[0].request("GET", "/stats")
            finally:
                for c in clients:
                    await c.close()
        finally:
            await server.stop()
        return outcomes, stats

    outcomes, stats = asyncio.run(drive())
    statuses = sorted(status for status, _ in outcomes)
    assert set(statuses) <= {200, 429}
    assert 429 in statuses, "a 2-deep queue under a stalled engine must refuse"
    for status, body in outcomes:
        if status == 429:
            assert body["retry_after_s"] > 0
            assert "queue full" in body["error"]
    assert stats["rejected_backpressure_total"] == statuses.count(429)
    assert stats["requests_total"] == n
    assert stats["requests_total"] == (
        stats["batch_rows_total"]
        + stats["rejected_total"]
        + stats["rejected_backpressure_total"]
        + stats["errors_total"]
        + stats["cancelled_total"]
    )


def test_client_retry_budget_rides_out_saturation():
    """A retrying client turns transient 429s into eventual 200s,
    honouring the server's Retry-After hint."""
    n = 10
    rows = _rows(n)
    plan = FaultPlan(
        seed=7, faults=(FaultSpec(kind="provider_delay", every=1, delay_ms=10.0),)
    )

    async def drive():
        session = wrap_session(scenarios.open_session(scenarios.get(SCENARIO), n_steps=n), plan)
        server = RoutingServer(
            session,
            ServerConfig(
                host="127.0.0.1", port=0, window_ms=0.0, max_batch=1,
                max_queue=1, scenario=SCENARIO,
            ),
        )
        await server.start()
        try:
            clients = [
                HttpClient(
                    "127.0.0.1", server.port,
                    max_retries=10, backoff_base_s=0.01, retry_seed=i,
                )
                for i in range(n)
            ]
            for c in clients:
                await c.connect()
            try:
                outcomes = await asyncio.gather(
                    *(
                        clients[i].request("POST", "/route", {"demand": rows[i].tolist()})
                        for i in range(n)
                    )
                )
            finally:
                for c in clients:
                    await c.close()
            retries = sum(c.retries_total for c in clients)
        finally:
            await server.stop()
        return outcomes, retries

    outcomes, retries = asyncio.run(drive())
    assert [status for status, _ in outcomes] == [200] * n
    assert retries > 0, "a 1-deep queue under 10 concurrent clients must have retried"


def _drive_drain(feed_seconds: float, drain_timeout: float):
    """Four in-flight requests on a slow batch feed, then a drain."""
    import time as _time

    from repro.serve import MicroBatcher

    rows = _rows(4)

    async def drive():
        session = scenarios.open_session(scenarios.get(SCENARIO), n_steps=4)
        original = session.feed
        session.feed = lambda demand: (_time.sleep(feed_seconds), original(demand))[1]
        batcher = MicroBatcher(session, window_ms=5.0, max_batch=4)
        await batcher.start()
        tasks = [asyncio.ensure_future(batcher.route(row)) for row in rows]
        await asyncio.sleep(0.05)  # the collector is now inside the slow feed
        t0 = asyncio.get_running_loop().time()
        drained = await asyncio.wait_for(batcher.drain(timeout=drain_timeout), timeout=5.0)
        elapsed = asyncio.get_running_loop().time() - t0
        outcomes = await asyncio.wait_for(
            asyncio.gather(*tasks, return_exceptions=True), timeout=5.0
        )
        return drained, elapsed, outcomes, batcher.stats

    return asyncio.run(drive())


def test_drain_completes_in_flight_work_within_deadline():
    drained, _, outcomes, stats = _drive_drain(feed_seconds=0.2, drain_timeout=5.0)
    assert drained
    # Every in-flight request ran to completion during the drain.
    assert sorted(step for step, _ in outcomes) == [0, 1, 2, 3]
    assert stats.batch_rows_total == 4
    assert stats.resolved_total == stats.requests_total == 4


def test_drain_deadline_exceeded_fails_stragglers_cleanly():
    """An overrun drain strands nobody: every unfinished future resolves
    with a clean shutdown error as soon as the deadline lapses."""
    from repro.sim.session import SessionExhaustedError

    drained, elapsed, outcomes, stats = _drive_drain(feed_seconds=0.6, drain_timeout=0.1)
    assert not drained, "a 0.1s deadline cannot cover a 0.6s feed"
    assert elapsed < 0.5  # the deadline bounded the wait, not the feed
    # No stranded awaiters: every future resolved, with the shutdown error.
    assert all(isinstance(o, SessionExhaustedError) for o in outcomes)
    assert stats.resolved_total == stats.requests_total == 4


def test_drained_server_refuses_new_requests_with_503():
    rows = _rows(4)

    async def drive():
        session = scenarios.open_session(scenarios.get(SCENARIO), n_steps=4)
        server = RoutingServer(
            session,
            ServerConfig(host="127.0.0.1", port=0, window_ms=0.0, scenario=SCENARIO),
        )
        await server.start()
        port = server.port
        async with HttpClient("127.0.0.1", port) as client:
            await client.route(rows[0].tolist())
            _, health_before = await client.request("GET", "/healthz")
            # Drain the batcher but keep responding on open connections:
            # the listener is closed, in-flight keep-alive sockets live on.
            drained = await server.batcher.drain(timeout=1.0)
            status, body = await client.request(
                "POST", "/route", {"demand": rows[1].tolist()}
            )
            _, health_after = await client.request("GET", "/healthz")
        await server.stop()
        return health_before, drained, status, body, health_after

    health_before, drained, status, body, health_after = asyncio.run(drive())
    assert health_before["status"] == "ok"
    assert drained, "an idle batcher drains instantly"
    assert status == 503
    assert "draining" in body["error"]
    assert body["retry_after_s"] > 0
    assert health_after["status"] == "draining"
