"""Integration tests for the routing server and micro-batcher.

Everything runs a real asyncio server on an ephemeral loopback port
through the stdlib-only :class:`~repro.serve.client.HttpClient`; the
central claim under test is that concurrent requests coalesced by the
micro-batcher return exactly the allocations a direct offline session
feed produces.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro import scenarios
from repro.serve import (
    BackpressureError,
    HttpClient,
    MicroBatcher,
    RoutingServer,
    ServerConfig,
    ServerDrainingError,
    run_smoke,
)
from repro.sim.session import SessionExhaustedError

SCENARIO = "serve-smoke"


def _scenario():
    return scenarios.get(SCENARIO)


def _rows(n: int) -> np.ndarray:
    scenario = _scenario()
    return scenarios.trace(scenario.trace, scenario.market).demand[:n]


def _with_server(n_steps: int, coro_fn, *, window_ms: float = 5.0, max_batch: int = 16):
    """Boot a server on an ephemeral port, run ``coro_fn(server)``, stop."""

    async def runner():
        session = scenarios.open_session(_scenario(), n_steps=n_steps)
        server = RoutingServer(
            session,
            ServerConfig(
                host="127.0.0.1", port=0, window_ms=window_ms, max_batch=max_batch,
                scenario=SCENARIO,
            ),
        )
        await server.start()
        try:
            return await coro_fn(server)
        finally:
            await server.stop()

    return asyncio.run(runner())


def test_smoke_self_test_passes():
    out = run_smoke(SCENARIO, n_requests=24, n_connections=6, window_ms=10.0, max_batch=16)
    assert out["allocations_identical"]
    assert out["requests"] == 24
    assert 1 <= out["batches_total"] <= 24


def test_concurrent_requests_match_direct_batched_feed():
    n = 20
    rows = _rows(n)

    async def drive(server):
        clients = [HttpClient("127.0.0.1", server.port) for _ in range(5)]
        for c in clients:
            await c.connect()
        try:
            bodies = await asyncio.gather(
                *(clients[i % 5].route(rows[i].tolist(), full=True) for i in range(n))
            )
        finally:
            for c in clients:
                await c.close()
        return bodies

    bodies = _with_server(n, drive)

    # Reconstruct the served allocation tensor in step order, then
    # replay the same demand sequence through a direct offline feed.
    demand_by_step = np.empty_like(rows)
    served = np.empty((n, len(rows[0]), 9))
    for i, body in enumerate(bodies):
        step = body["step"]
        demand_by_step[step] = rows[i]
        served[step] = np.asarray(body["allocation"]["matrix"])
    direct = scenarios.open_session(_scenario(), n_steps=n)
    allocations = direct.feed(demand_by_step)
    assert np.array_equal(served, allocations)
    # Steps were assigned in arrival order with no gaps.
    assert sorted(b["step"] for b in bodies) == list(range(n))


def test_route_response_shape_and_stats():
    rows = _rows(3)

    async def drive(server):
        async with HttpClient("127.0.0.1", server.port) as client:
            first = await client.route(rows[0].tolist())
            second = await client.route({
                code: float(value)
                for code, value in zip(server.session.state_codes, rows[1])
                if value > 0
            })
            _, health = await client.request("GET", "/healthz")
            _, stats = await client.request("GET", "/stats")
        return first, second, health, stats

    first, second, health, stats = _with_server(3, drive)
    labels = list(scenarios.problem().deployment.labels)
    assert first["step"] == 0 and second["step"] == 1
    assert sorted(first["loads"]) == sorted(labels)
    assert sorted(first["prices"]) == sorted(labels)
    assert "T" in first["clock"]  # ISO timestamp
    assert health["status"] == "ok" and health["steps_fed"] == 2
    assert stats["requests_total"] == 2
    assert stats["steps_fed"] == 2 and stats["steps_remaining"] == 1
    assert stats["scenario"] == SCENARIO


def test_http_error_paths():
    rows = _rows(2)

    async def drive(server):
        async with HttpClient("127.0.0.1", server.port) as client:
            results = {}
            results["not_found"] = await client.request("GET", "/nope")
            results["bad_method"] = await client.request("GET", "/route")
            results["bad_json"] = await client.request("POST", "/route", None)
            results["bad_key"] = await client.request("POST", "/route", {"x": 1})
            results["bad_len"] = await client.request("POST", "/route", {"demand": [1.0]})
            results["bad_state"] = await client.request(
                "POST", "/route", {"demand": {"ZZ": 1.0}}
            )
            results["negative"] = await client.request(
                "POST", "/route", {"demand": (-rows[0]).tolist()}
            )
            await client.route(rows[0].tolist())
            await client.route(rows[1].tolist())
            results["exhausted"] = await client.request(
                "POST", "/route", {"demand": rows[0].tolist()}
            )
        return results

    results = _with_server(2, drive)
    assert results["not_found"][0] == 404
    assert results["bad_method"][0] == 405
    assert results["bad_key"][0] == 400
    assert results["bad_len"][0] == 400
    assert results["bad_state"][0] == 400
    assert results["negative"][0] == 400
    assert results["exhausted"][0] == 409
    for key in ("bad_key", "bad_len", "bad_state", "negative", "exhausted"):
        assert "error" in results[key][1]


def test_keep_alive_connection_serves_sequential_steps():
    rows = _rows(6)

    async def drive(server):
        async with HttpClient("127.0.0.1", server.port) as client:
            return [await client.route(row.tolist()) for row in rows]

    bodies = _with_server(6, drive)
    assert [b["step"] for b in bodies] == list(range(6))


def test_stop_fails_requests_mid_feed_instead_of_hanging():
    """Regression: stopping the batcher mid-feed stranded in-flight futures.

    The feed is slowed so the collector is guaranteed to be inside the
    executor call when ``stop()`` cancels it; every submitted request
    must then resolve (with an error), not hang forever.
    """
    rows = _rows(4)

    async def drive():
        session = scenarios.open_session(_scenario(), n_steps=4)
        original = session.feed
        session.feed = lambda demand: (time.sleep(0.4), original(demand))[1]
        batcher = MicroBatcher(session, window_ms=1.0, max_batch=4)
        await batcher.start()
        tasks = [asyncio.ensure_future(batcher.route(row)) for row in rows]
        await asyncio.sleep(0.1)  # collector is now sleeping inside feed
        await asyncio.wait_for(batcher.stop(), timeout=2.0)
        return await asyncio.wait_for(
            asyncio.gather(*tasks, return_exceptions=True), timeout=2.0
        )

    outcomes = asyncio.run(drive())
    assert len(outcomes) == 4
    assert all(isinstance(o, SessionExhaustedError) for o in outcomes)


def test_cancelled_request_does_not_burn_a_horizon_step():
    rows = _rows(3)

    async def drive():
        session = scenarios.open_session(_scenario(), n_steps=3)
        batcher = MicroBatcher(session, window_ms=50.0, max_batch=8)
        # Enqueue before the collector exists, so the cancellation is
        # deterministically visible when the batch is assembled.
        tasks = [asyncio.ensure_future(batcher.route(row)) for row in rows]
        await asyncio.sleep(0)  # let the requests enqueue
        tasks[1].cancel()
        await batcher.start()
        done = await asyncio.gather(*tasks, return_exceptions=True)
        stats = batcher.stats
        steps_fed = session.steps_fed
        await batcher.stop()
        return done, stats, steps_fed

    done, stats, steps_fed = asyncio.run(drive())
    # The two surviving requests got consecutive steps; the cancelled
    # one consumed nothing.
    assert steps_fed == 2
    assert done[0][0] == 0 and done[2][0] == 1
    assert isinstance(done[1], asyncio.CancelledError)
    assert stats.cancelled_total == 1
    assert stats.requests_total == stats.resolved_total == 3


def test_batcher_stats_reconcile_after_mixed_outcomes():
    rows = _rows(8)

    async def drive(server):
        clients = [HttpClient("127.0.0.1", server.port) for _ in range(4)]
        for c in clients:
            await c.connect()
        try:
            # 6 routable requests + 2 past the horizon (rejected).
            outcomes = await asyncio.gather(
                *(
                    clients[i % 4].request("POST", "/route", {"demand": rows[i].tolist()})
                    for i in range(8)
                )
            )
            _, stats = await clients[0].request("GET", "/stats")
        finally:
            for c in clients:
                await c.close()
        return outcomes, stats

    outcomes, stats = _with_server(6, drive)
    assert sorted(status for status, _ in outcomes) == [200] * 6 + [409] * 2
    assert stats["requests_total"] == 8
    assert stats["rejected_total"] == 2
    assert stats["requests_total"] == (
        stats["batches_total"] * stats["batch_size_mean"]
        + stats["rejected_total"]
        + stats["errors_total"]
        + stats["cancelled_total"]
    )


def test_full_queue_refuses_at_admission_with_retry_hint():
    """The admission bound fires before anything enqueues, and the
    refusal carries a service-rate retry estimate."""
    rows = _rows(4)

    async def drive():
        session = scenarios.open_session(_scenario(), n_steps=4)
        batcher = MicroBatcher(session, window_ms=50.0, max_batch=8, max_queue=2)
        # No collector yet: the queue can only fill, so admission is
        # deterministic — two fit, the third is refused.
        tasks = [asyncio.ensure_future(batcher.route(row)) for row in rows[:3]]
        await asyncio.sleep(0)  # let the route coroutines hit admission
        assert batcher.queue_depth == 2
        await batcher.start()
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        stats = batcher.stats
        await batcher.stop()
        return outcomes, stats

    outcomes, stats = asyncio.run(drive())
    assert outcomes[0][0] == 0 and outcomes[1][0] == 1  # admitted pair routed
    refused = outcomes[2]
    assert isinstance(refused, BackpressureError)
    assert not isinstance(refused, ServerDrainingError)
    assert refused.retry_after_s > 0
    assert "queue full" in str(refused)
    assert stats.rejected_backpressure_total == 1
    assert stats.requests_total == stats.resolved_total == 3


def test_route_after_stop_is_refused_not_hung():
    """Regression: a route() call after stop() used to enqueue onto a
    queue nobody drains and hang forever; it must refuse at admission."""
    rows = _rows(2)

    async def drive():
        session = scenarios.open_session(_scenario(), n_steps=2)
        batcher = MicroBatcher(session, window_ms=1.0, max_batch=4)
        await batcher.start()
        await batcher.route(rows[0])
        await batcher.stop()
        with pytest.raises(ServerDrainingError, match="draining"):
            await asyncio.wait_for(batcher.route(rows[1]), timeout=2.0)
        return batcher.stats

    stats = asyncio.run(drive())
    assert stats.rejected_backpressure_total == 1
    assert stats.requests_total == stats.resolved_total == 2


async def _raw_request(port: int, head: str) -> str:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(head.encode())
        await writer.drain()
        return (await reader.read(4096)).decode()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def test_request_body_size_is_bounded():
    """Oversized or malformed Content-Length: 413/400 + connection close."""

    async def drive(server):
        server_config = ServerConfig(
            host="127.0.0.1", port=0, max_body_bytes=1024, scenario=SCENARIO
        )
        bounded = RoutingServer(server.session, server_config)
        await bounded.start()
        try:
            port = bounded.port
            results = {}
            results["too_large"] = await _raw_request(
                port,
                "POST /route HTTP/1.1\r\nHost: x\r\nContent-Length: 4096\r\n\r\n",
            )
            results["not_a_number"] = await _raw_request(
                port,
                "POST /route HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n",
            )
            results["negative"] = await _raw_request(
                port,
                "POST /route HTTP/1.1\r\nHost: x\r\nContent-Length: -5\r\n\r\n",
            )
        finally:
            await bounded.stop()
        return results

    results = _with_server(2, drive)
    assert results["too_large"].startswith("HTTP/1.1 413 ")
    assert "Connection: close" in results["too_large"]
    for key in ("not_a_number", "negative"):
        assert results[key].startswith("HTTP/1.1 400 ")
        assert "Connection: close" in results[key]


def test_server_serves_rolling_session_across_window_boundaries():
    """A rolling-horizon server keeps routing past a billing window."""
    n = 10
    rows = _rows(n)

    async def runner():
        session = scenarios.open_rolling_session(
            _scenario(), window_steps=4, max_windows=3
        )
        server = RoutingServer(
            session,
            ServerConfig(host="127.0.0.1", port=0, window_ms=2.0, scenario=SCENARIO),
        )
        await server.start()
        try:
            async with HttpClient("127.0.0.1", server.port) as client:
                bodies = [await client.route(row.tolist()) for row in rows]
                _, health = await client.request("GET", "/healthz")
        finally:
            await server.stop()
        return bodies, health, session

    bodies, health, session = asyncio.run(runner())
    assert [b["step"] for b in bodies] == list(range(n))
    assert health["steps_fed"] == n and health["steps_remaining"] == 2
    assert session.windows_completed == 2  # two full windows banked

    # Each banked window is bit-identical to a direct offline replay.
    direct = scenarios.open_rolling_session(_scenario(), window_steps=4, max_windows=3)
    direct.feed(rows)
    for served, offline in zip(session.results(), direct.results()):
        assert np.array_equal(served.loads, offline.loads)
        assert np.array_equal(served.paid_prices, offline.paid_prices)


def test_open_session_rejects_signal_router_kinds():
    scenario = _scenario()
    for kind in ("carbon", "weather"):
        bad = scenario.derive(router=scenario.router.__class__.of(kind))
        with pytest.raises(Exception, match="incremental session"):
            scenarios.open_session(bad)
