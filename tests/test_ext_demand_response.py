"""Tests for repro.ext.demand_response."""

from datetime import datetime

import numpy as np
import pytest

from repro.energy import GOOGLE_LIKE
from repro.errors import ConfigurationError
from repro.ext.demand_response import (
    DemandResponseProgram,
    _find_runs,
    evaluate_demand_response,
)
from repro.sim.results import SimulationResult


def result_with_prices(prices, loads=None):
    prices = np.asarray(prices, dtype=float)
    n_steps, n_clusters = prices.shape
    loads = (np.asarray(loads, dtype=float) if loads is not None else np.full(prices.shape, 500.0))
    histogram = np.zeros(240)
    histogram[0] = loads.sum()
    return SimulationResult(
        start=datetime(2008, 12, 16),
        step_seconds=3600,
        cluster_labels=tuple(f"C{i}" for i in range(n_clusters)),
        capacities=np.full(n_clusters, 1000.0),
        server_counts=np.full(n_clusters, 100.0),
        loads=loads,
        paid_prices=prices,
        distance_histogram=histogram,
    )


class TestFindRuns:
    def test_basic(self):
        mask = np.array([False, True, True, False, True])
        assert _find_runs(mask, 1) == [(1, 2), (4, 1)]

    def test_min_length_filter(self):
        mask = np.array([True, False, True, True, True])
        assert _find_runs(mask, 2) == [(2, 3)]

    def test_all_true(self):
        assert _find_runs(np.array([True, True]), 1) == [(0, 2)]


class TestProgram:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DemandResponseProgram(trigger_price=0.0)
        with pytest.raises(ConfigurationError):
            DemandResponseProgram(max_events_per_cluster=0)


class TestEvaluation:
    def test_no_stress_no_events(self):
        result = result_with_prices(np.full((48, 2), 50.0))
        outcome = evaluate_demand_response(result, GOOGLE_LIKE)
        assert outcome.n_events == 0
        assert outcome.total_revenue == 0.0

    def test_stress_creates_paid_events(self):
        prices = np.full((48, 2), 50.0)
        prices[10:14, 0] = 400.0  # 4-hour spike at cluster 0
        result = result_with_prices(prices)
        program = DemandResponseProgram(trigger_price=200.0, compensation_per_mwh=300.0)
        outcome = evaluate_demand_response(result, GOOGLE_LIKE, program)
        assert outcome.n_events == 1
        event = outcome.events[0]
        assert event.cluster_label == "C0"
        assert event.n_steps == 4
        assert event.curtailed_mwh > 0
        assert event.revenue == pytest.approx(event.curtailed_mwh * 300.0)

    def test_event_cap_respected(self):
        prices = np.full((100, 1), 50.0)
        prices[::10] = 400.0  # ten separate one-hour spikes
        result = result_with_prices(prices)
        program = DemandResponseProgram(trigger_price=200.0, max_events_per_cluster=3)
        outcome = evaluate_demand_response(result, GOOGLE_LIKE, program)
        assert outcome.n_events == 3

    def test_curtailment_bounded_by_actual_energy(self):
        prices = np.full((24, 1), 400.0)
        result = result_with_prices(prices)
        outcome = evaluate_demand_response(result, GOOGLE_LIKE)
        total_energy = result.total_energy_mwh(GOOGLE_LIKE)
        assert outcome.total_curtailed_mwh <= total_energy

    def test_curtail_target_validation(self):
        result = result_with_prices(np.full((10, 1), 50.0))
        with pytest.raises(ConfigurationError):
            evaluate_demand_response(result, GOOGLE_LIKE, curtail_to_utilization=1.5)

    def test_deeper_curtailment_earns_more(self):
        prices = np.full((24, 1), 400.0)
        result = result_with_prices(prices)
        deep = evaluate_demand_response(result, GOOGLE_LIKE, curtail_to_utilization=0.0)
        shallow = evaluate_demand_response(result, GOOGLE_LIKE, curtail_to_utilization=0.4)
        assert deep.total_revenue > shallow.total_revenue


class TestServerSuspension:
    def test_suspension_sheds_fixed_power(self):
        # With 65%-idle servers, curtailment without suspension sheds
        # only the small variable term; suspension powers machines off
        # and earns far more (§7's "suspending servers").
        prices = np.full((24, 1), 400.0)
        result = result_with_prices(prices)
        suspended = evaluate_demand_response(result, GOOGLE_LIKE, suspend_servers=True)
        throttled = evaluate_demand_response(result, GOOGLE_LIKE, suspend_servers=False)
        assert suspended.total_curtailed_mwh > 2.0 * throttled.total_curtailed_mwh
