"""Bench: regenerate Fig. 9 (differential time series, Aug 2008)."""

from benchmarks.conftest import run_once
from repro.experiments import fig09_differential_series


def test_fig09_differential_series(benchmark, warm):
    result = run_once(benchmark, fig09_differential_series.run)
    print("\n" + result.to_text())
    # Spikes extend far off the +/-100 scale over the full record.
    full = result.rows[-1]
    assert full[3] > 150.0 or full[2] < -150.0
    # The fortnight windows show repeated sign flips (the dynamic
    # opportunity): at least a handful per pair.
    for row in result.rows[:-1]:
        assert row[4] >= 4
