"""Extension bench (§8): carbon-aware vs price-aware routing.

The paper's future-work section proposes swapping the dollar cost
function for an environmental one. This bench quantifies the trade on
the 24-day trace: the carbon-aware router should cut CO2 below both
the baseline and the dollar optimizer, while the dollar optimizer
keeps the lowest bill.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.energy import OPTIMISTIC_FUTURE
from repro.ext.carbon import CarbonConsciousRouter, carbon_intensity_matrix
from repro.experiments.common import (
    baseline_24day,
    default_dataset,
    default_problem,
    trace_24day,
)
from repro.routing.price import PriceConsciousRouter
from repro.sim.engine import _hour_indices, simulate


class _SignalRouter:
    """Run a price-style router against a substitute hourly signal."""

    def __init__(self, inner, signal_matrix, hours):
        self._inner = inner
        self._signal = signal_matrix
        self._hours = hours
        self._t = 0

    def allocate(self, demand, prices, limits):
        row = self._signal[self._hours[self._t]]
        self._t += 1
        return self._inner.allocate(demand, row, limits)


def compare():
    problem = default_problem()
    dataset = default_dataset()
    trace = trace_24day()
    base = baseline_24day()

    carbon = carbon_intensity_matrix(dataset)
    hub_cols = [dataset.hub_column(c) for c in problem.deployment.hub_codes]
    carbon_cols = carbon[:, hub_cols]
    hours = _hour_indices(trace, dataset)

    dollars = simulate(
        trace, dataset, problem, PriceConsciousRouter(problem, 1500.0)
    )
    green = simulate(
        trace,
        dataset,
        problem,
        _SignalRouter(CarbonConsciousRouter(problem, 1500.0), carbon_cols, hours),
    )

    params = OPTIMISTIC_FUTURE
    rows = {}
    for name, result in (("baseline", base), ("dollars", dollars), ("carbon", green)):
        energy = result.energy_mwh(params)
        tonnes = float(np.sum(energy * carbon_cols[hours]) / 1000.0)
        rows[name] = (result.total_cost(params), tonnes)
    return rows


def test_green_routing_tradeoff(benchmark, warm):
    rows = run_once(benchmark, compare)
    print()
    for name, (cost, tonnes) in rows.items():
        print(f"  {name:9s} cost ${cost:12,.0f}   CO2 {tonnes:10,.0f} t")
    # Carbon-aware routing produces the least CO2.
    assert rows["carbon"][1] < rows["baseline"][1]
    assert rows["carbon"][1] <= rows["dollars"][1]
    # Dollar-aware routing produces the lowest bill.
    assert rows["dollars"][0] < rows["baseline"][0]
    assert rows["dollars"][0] <= rows["carbon"][0]
