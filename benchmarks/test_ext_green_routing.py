"""Extension bench (§8): carbon-aware vs price-aware routing.

The paper's future-work section proposes swapping the dollar cost
function for an environmental one. This bench quantifies the trade on
the 24-day trace: the carbon-aware router should cut CO2 below both
the baseline and the dollar optimizer, while the dollar optimizer
keeps the lowest bill.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.energy import OPTIMISTIC_FUTURE
from repro.ext.carbon import CarbonConsciousRouter, carbon_intensity_matrix
from repro.ext.signal import hourly_signal_rows
from repro.experiments.common import (
    baseline_24day,
    default_dataset,
    default_problem,
    trace_24day,
)
from repro.routing.price import PriceConsciousRouter
from repro.sim.engine import simulate


def compare():
    problem = default_problem()
    dataset = default_dataset()
    trace = trace_24day()
    base = baseline_24day()

    carbon_rows = hourly_signal_rows(
        carbon_intensity_matrix(dataset),
        dataset,
        problem.deployment,
        trace,
    )

    dollars = simulate(trace, dataset, problem, PriceConsciousRouter(problem, 1500.0))
    green = simulate(
        trace,
        dataset,
        problem,
        CarbonConsciousRouter(problem, 1500.0),
        router_prices=carbon_rows,
    )

    params = OPTIMISTIC_FUTURE
    rows = {}
    for name, result in (("baseline", base), ("dollars", dollars), ("carbon", green)):
        energy = result.energy_mwh(params)
        tonnes = float(np.sum(energy * carbon_rows) / 1000.0)
        rows[name] = (result.total_cost(params), tonnes)
    return rows


def test_green_routing_tradeoff(benchmark, warm):
    rows = run_once(benchmark, compare)
    print()
    for name, (cost, tonnes) in rows.items():
        print(f"  {name:9s} cost ${cost:12,.0f}   CO2 {tonnes:10,.0f} t")
    # Carbon-aware routing produces the least CO2.
    assert rows["carbon"][1] < rows["baseline"][1]
    assert rows["carbon"][1] <= rows["dollars"][1]
    # Dollar-aware routing produces the lowest bill.
    assert rows["dollars"][0] < rows["baseline"][0]
    assert rows["dollars"][0] <= rows["carbon"][0]
