"""Extension bench (§7): routing savings under real billing structures.

"Most current contractual arrangements would reduce the potential
savings below what our analysis indicates" — quantified: the same pair
of routing runs billed under four contract types.

A subtlety the comparison surfaces: even under a fixed price the
price-aware run bills slightly less, because concentrating load into
fewer clusters reduces total *energy* under the concave §5.1 curve
(consolidation value, not price-chasing value). The provisioned-
capacity plan — blind to consumption entirely — is the true zero.
"""

from benchmarks.conftest import run_once
from repro.energy import OPTIMISTIC_FUTURE
from repro.experiments.common import baseline_24day, price_run_24day
from repro.ext.contracts import compare_plans


def compare():
    baseline = baseline_24day()
    priced = price_run_24day(1500.0, follow_95_5=False)
    return compare_plans(baseline, priced, OPTIMISTIC_FUTURE)


def test_contract_pass_through(benchmark, warm):
    rows = run_once(benchmark, compare)
    print()
    by_plan = {}
    for row in rows:
        by_plan[row["plan"]] = row["savings_fraction"]
        print(f"  {row['plan']:22s} savings {row['savings_fraction']:6.1%}")
    # Strictly decreasing pass-through as the hedge deepens:
    # indexed > blended > fixed > provisioned (= exactly zero).
    assert by_plan["wholesale-indexed"] > 0.15
    assert (
        by_plan["wholesale-indexed"]
        > by_plan["blended (70% hedged)"]
        > by_plan["fixed-price"]
        > by_plan["provisioned capacity"]
    )
    assert abs(by_plan["provisioned capacity"]) < 1e-9
    # The fixed-price residual is consolidation-driven energy savings,
    # well below the price-chasing value.
    assert by_plan["fixed-price"] < 0.6 * by_plan["wholesale-indexed"]
