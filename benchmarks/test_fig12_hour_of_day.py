"""Bench: regenerate Fig. 12 (hour-of-day differential profiles)."""

from benchmarks.conftest import run_once
from repro.experiments import fig12_hour_of_day


def test_fig12_hour_of_day(benchmark, warm):
    result = run_once(benchmark, fig12_hour_of_day.run)
    print("\n" + result.to_text())
    swings = {row[0]: row[5] for row in result.rows}
    # Coast-to-coast pair swings hard with the hour (time-zone offset
    # of demand peaks); the Chicago-Peoria pair barely moves.
    assert swings["NP15-DOM"] > 10.0
    assert swings["NP15-DOM"] > 1.5 * swings["CHI-IL"]
    # PaloAlto-Richmond flips sign across the day (paper: Virginia has
    # the edge before 5am ET, the West after 6am).
    medians = result.series["NP15-minus-DOM/median"]
    assert medians.min() < 0.0 < medians.max()
