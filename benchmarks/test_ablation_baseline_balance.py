"""Ablation: the baseline's bandwidth-balancing slack (DESIGN §4).

The 95/5 caps come from the baseline's 95th percentiles; how hard the
baseline balances (its slack) therefore controls how tight the caps
are and how much the followed-mode savings shrink. This quantifies the
modelling choice documented in DESIGN.md.
"""

from benchmarks.conftest import run_once
from repro.energy import OPTIMISTIC_FUTURE
from repro.experiments.common import default_dataset, default_problem, trace_24day
from repro.routing.akamai import BaselineProximityRouter
from repro.routing.price import PriceConsciousRouter
from repro.sim.engine import SimulationOptions, simulate


def sweep():
    problem = default_problem()
    dataset = default_dataset()
    trace = trace_24day()
    router = PriceConsciousRouter(problem, distance_threshold_km=1500.0)
    rows = []
    for slack in (1.05, 1.15, 1.6, 4.0):
        baseline = simulate(
            trace,
            dataset,
            problem,
            BaselineProximityRouter(problem, balance_slack=slack),
        )
        followed = simulate(
            trace,
            dataset,
            problem,
            router,
            SimulationOptions(bandwidth_caps=baseline.percentiles_95()),
        )
        rows.append((slack, followed.savings_vs(baseline, OPTIMISTIC_FUTURE) * 100.0))
    return rows


def test_ablation_baseline_balance(benchmark, warm):
    rows = run_once(benchmark, sweep)
    print()
    for slack, savings in rows:
        print(f"  balance slack {slack:.2f} -> followed-95/5 savings {savings:5.1f}%")
    savings = [s for _, s in rows]
    # Looser balancing -> looser caps -> more room to chase prices.
    assert savings[-1] > savings[0]
    # Savings stay positive under every slack: constraints cut but
    # never eliminate the opportunity.
    assert min(savings) > 0.0
