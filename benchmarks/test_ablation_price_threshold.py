"""Ablation: the optimizer's $5/MWh price threshold (§6.1).

The threshold trades electricity savings against churn: with a huge
threshold the router ignores most differentials and degenerates toward
nearest-cluster routing; with zero threshold it chases noise.
"""

import pytest

from benchmarks.conftest import run_once
from repro.energy import OPTIMISTIC_FUTURE
from repro.experiments.common import baseline_24day, default_dataset, default_problem, trace_24day
from repro.routing.price import PriceConsciousRouter
from repro.sim.engine import simulate


def sweep():
    problem = default_problem()
    dataset = default_dataset()
    trace = trace_24day()
    base = baseline_24day()
    rows = []
    for price_threshold in (0.0, 5.0, 20.0, 60.0, 1000.0):
        router = PriceConsciousRouter(
            problem,
            distance_threshold_km=1500.0,
            price_threshold=price_threshold,
        )
        result = simulate(trace, dataset, problem, router)
        rows.append(
            (
                price_threshold,
                result.savings_vs(base, OPTIMISTIC_FUTURE) * 100.0,
                result.mean_distance_km,
            )
        )
    return rows


def test_ablation_price_threshold(benchmark, warm):
    rows = run_once(benchmark, sweep)
    print()
    for threshold, savings, dist in rows:
        print(
            f"  price threshold {threshold:7.1f} $/MWh -> "
            f"savings {savings:5.1f}%, mean dist {dist:5.0f} km"
        )
    savings = [r[1] for r in rows]
    # The paper's $5 threshold costs almost nothing vs threshold 0.
    assert savings[1] == pytest.approx(savings[0], abs=3.0)
    # A huge threshold destroys the savings (router goes price-blind).
    assert savings[-1] < savings[1] * 0.5
    # Savings decrease monotonically in the threshold (weakly).
    assert all(a >= b - 0.5 for a, b in zip(savings, savings[1:]))
    # And distance falls back toward proximity routing.
    assert rows[-1][2] < rows[1][2]
