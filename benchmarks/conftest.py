"""Benchmark fixtures.

The benchmarks regenerate every table and figure of the paper. The
heavy shared substrate (39-month market, traces, baseline runs) is
warmed once per session so each figure's bench measures its own
driver, and `rounds=1` everywhere — these are end-to-end experiment
replays, not micro-benchmarks.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def warm():
    """Warm the shared experiment caches once."""
    from repro.experiments.common import (
        baseline_24day,
        baseline_long,
        default_dataset,
        default_problem,
        long_trace,
        trace_24day,
    )

    default_dataset()
    default_problem()
    trace_24day()
    baseline_24day()
    long_trace()
    baseline_long()
    return True


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
