"""Bench: regenerate Fig. 7 (hour-to-hour change histograms)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig07_hourly_change


def test_fig07_hourly_change(benchmark, warm):
    result = run_once(benchmark, fig07_hourly_change.run)
    print("\n" + result.to_text())
    for row in result.rows:
        hub, mean, sigma_ours, sigma_paper, kurt_ours, kurt_paper, within_ours, within_paper = row
        assert abs(mean) < 0.5, hub
        assert sigma_ours == pytest.approx(sigma_paper, rel=0.5), hub
        assert kurt_ours > 10.0, hub  # "very long tails"
        assert within_ours == pytest.approx(within_paper, abs=0.12), hub
