"""Bench: regenerate Fig. 5 (window-sigma table, NYC Q1 2009)."""

from benchmarks.conftest import run_once
from repro.experiments import fig05_window_sigma


def test_fig05_window_sigma(benchmark, warm):
    result = run_once(benchmark, fig05_window_sigma.run)
    print("\n" + result.to_text())
    rt = [row[1] for row in result.rows]
    # RT sigma falls monotonically as the window grows (5min..24h).
    assert rt == sorted(rt, reverse=True)
    # Day-ahead is flatter than RT at the short windows.
    hourly_row = result.rows[1]
    assert hourly_row[1] > hourly_row[3]
    # At 24 h the two markets are close (paper: 15.6 vs 16.0).
    daily_row = result.rows[-1]
    assert daily_row[1] <= daily_row[3] * 1.6
