"""Bench: regenerate Fig. 6 (per-hub trimmed statistics)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig06_hub_stats


def test_fig06_hub_stats(benchmark, warm):
    result = run_once(benchmark, fig06_hub_stats.run)
    print("\n" + result.to_text())
    for row in result.rows:
        city, rto, mean_ours, mean_paper, std_ours, std_paper, kurt_ours, kurt_paper = row
        assert mean_ours == pytest.approx(mean_paper, rel=0.15), city
        assert std_ours == pytest.approx(std_paper, rel=0.40), city
        assert kurt_ours > 3.5, city  # leptokurtic like the paper's
    means = {row[0]: row[2] for row in result.rows}
    assert means["New York, NY"] == max(means.values())
    assert means["Chicago, IL"] == min(means.values())
