#!/usr/bin/env python3
"""Benchmark regression gate: fresh engine timings vs the committed record.

Compares a fresh ``bench_engine.py`` run against the committed
``BENCH_engine.json``. Absolute wall-clock is machine-dependent (the
committed record is a full 365-day run; CI does ``--quick`` 60-day
runs on shared runners), so the gate is on each case's *speedup* —
batched pipeline vs per-step reference on the same machine and trace —
which is a scale- and machine-robust proxy for the batched engine's
health. A case fails when its fresh speedup falls more than
``--max-regression`` (default 25%) below the committed speedup.

Also re-asserts the correctness invariant recorded in the fresh run:
the batched pipeline must not have diverged from the reference.

Run:  python benchmarks/check_regression.py \
          --baseline BENCH_engine.json --fresh BENCH_fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys


#: Allowed provider-indirection slowdown on dataset materialisation.
#: The indirection is one constructor and one method call on top of
#: seconds of numpy work, so anything beyond timing noise is a bug.
MAX_PROVIDER_OVERHEAD = 1.25

#: Absolute speedup floors for the committed full-run record (the
#: 365-day single-threaded numpy measurement on the reference box).
#: These gate the *committed* numbers: a re-benchmark that lands below
#: a floor must not be committed as the new baseline. Fresh CI runs
#: are quick runs on shared runners and are gated relatively instead.
#: The issue's 12x target for the joint cases was not reached on the
#: single-core reference box (7-8x measured full-run; ~10.7x on quick
#: runs where the per-step reference pays proportionally more
#: overhead); the floors pin the realised full-run numbers with a
#: ~15% noise margin.
COMMITTED_SPEEDUP_FLOORS = {
    "price_unconstrained": 9.5,
    "price_followed_95_5": 10.5,
    "baseline_proximity": 9.0,
    "joint_soft_objective": 6.5,
    "joint_followed_95_5": 6.0,
}

#: Float32 is opt-in and tolerance-based, not bit-identical; these are
#: generous ceilings over the observed errors (~1e-9 aggregate cost,
#: ~5e-7 per-step loads) so real precision regressions still trip.
MAX_FLOAT32_COST_REL_ERR = 1e-6
MAX_FLOAT32_LOAD_REL_ERR = 1e-4

#: The streaming campaign path re-walks the expansion and folds every
#: metric through a reducer instead of one dict insert; that must stay
#: within noise of the eager path on a simulation-free 10^4-point run.
MAX_CAMPAIGN_OVERHEAD = 1.15

#: Peak parent memory of the streaming path relative to the eager
#: path on the same campaign. The eager path holds the full expansion
#: and a per-point metrics dict; the campaign path holds open groups
#: and per-cell reducer states, so it must land well under half.
MAX_CAMPAIGN_PEAK_RATIO = 0.5

#: Absolute QPS floors for the committed serving benchmark (full-run
#: records only, like COMMITTED_SPEEDUP_FLOORS). Calibrated ~35-40%
#: below the reference box's sustained rates (~930 / ~830 / ~1640 qps
#: at concurrency 1 / 8 / 32; the lone client skips the 2 ms
#: micro-batch window entirely, hence the c1 jump over c8).
COMMITTED_SERVE_QPS_FLOORS = {"c1": 550.0, "c8": 500.0, "c32": 1000.0}

#: The lone-client median must stay below the pre-fast-path 6.3 ms
#: (the c1 p50 when every singleton request paid the batch window and
#: the batched-allocator setup; committed record, full runs only).
COMMITTED_SERVE_C1_P50_MS = 6.3

#: Sharded serving vs the single-worker c32 record: with at least
#: 2x workers cores the kernel runs the shards genuinely in parallel
#: and the group must at least double the single-worker throughput.
#: With fewer cores (the 1-core reference box, most CI runners) the
#: shards time-slice one core and the gate is a no-collapse floor —
#: process sharding may cost scheduling overhead, but must keep at
#: least half the single-worker rate.
SHARDED_PARALLEL_SPEEDUP = 2.0
SHARDED_NO_COLLAPSE_RATIO = 0.5

#: Fresh serving runs on shared CI runners keep a generous margin:
#: a level fails only below this fraction of the committed QPS.
MIN_SERVE_QPS_RATIO = 0.4

#: At the widest concurrency level the micro-batcher must actually
#: coalesce; a mean batch size at ~1 means serving has silently
#: degraded to one engine call per request.
MIN_SERVE_BATCH_MEAN = 4.0


def check_profile(fresh: dict) -> list[str]:
    """Gates on the fresh record's per-phase profile section."""
    section = fresh.get("profile")
    if section is None:
        return []  # records from before the profiling harness
    failures = []
    for case, phases in section.get("cases", {}).items():
        missing = [p for p in ("precompute", "routing", "reduce", "finalize") if p not in phases]
        total = float(phases.get("total", 0.0))
        status = "ok" if not missing and total > 0.0 else "FAIL"
        print(
            f"{'profile:' + case:24s} total {total:9.3f}s  "
            f"routing {float(phases.get('routing', 0.0)):7.3f}s  {status}"
        )
        if missing:
            failures.append(f"profile section for {case} lacks phases: {', '.join(missing)}")
        if total <= 0.0:
            failures.append(f"profile section for {case} recorded a non-positive total")
    return failures


def check_kernel(fresh: dict) -> list[str]:
    """Gates on the fresh record's kernel/threading variant section."""
    section = fresh.get("kernel")
    if section is None:
        return []  # records from before the kernel selector
    failures = []
    for name, variant in section.get("variants", {}).items():
        if not variant.get("available", False):
            print(f"{'kernel:' + name:24s} unavailable (optional dependency)  ok")
            continue
        identical = bool(variant.get("bit_identical", False))
        status = "ok" if identical else "FAIL"
        print(
            f"{'kernel:' + name:24s} {float(variant.get('seconds', 0.0)):9.3f}s  "
            f"bit_identical {identical}  {status}"
        )
        if not identical:
            failures.append(f"kernel variant {name} diverged bitwise from the numpy engine")
    return failures


def check_float32(fresh: dict) -> list[str]:
    """Gates on the fresh record's float32 engine-mode section."""
    section = fresh.get("float32")
    if section is None:
        return []  # records from before the float32 mode
    failures = []
    cost_err = float(section.get("cost_rel_err", 0.0))
    load_err = float(section.get("max_load_rel_err", 0.0))
    ok = cost_err <= MAX_FLOAT32_COST_REL_ERR and load_err <= MAX_FLOAT32_LOAD_REL_ERR
    print(
        f"{'float32_mode':24s} cost rel err {cost_err:9.2e}  "
        f"load rel err {load_err:9.2e}  {'ok' if ok else 'FAIL'}"
    )
    if cost_err > MAX_FLOAT32_COST_REL_ERR:
        failures.append(
            f"float32 total-cost relative error {cost_err:.2e} exceeds "
            f"{MAX_FLOAT32_COST_REL_ERR:.0e}"
        )
    if load_err > MAX_FLOAT32_LOAD_REL_ERR:
        failures.append(
            f"float32 per-step load relative error {load_err:.2e} exceeds "
            f"{MAX_FLOAT32_LOAD_REL_ERR:.0e}"
        )
    return failures


def check_committed_floors(baseline: dict) -> list[str]:
    """Absolute speedup floors on the committed full-run record."""
    if int(baseline.get("trace", {}).get("days", 0)) < 365:
        return []  # floors are calibrated for the full-run record only
    failures = []
    runs = baseline.get("runs", {})
    for name, floor in COMMITTED_SPEEDUP_FLOORS.items():
        if name not in runs:
            continue
        speedup = float(runs[name]["speedup"])
        status = "ok" if speedup >= floor else "FAIL"
        print(f"{'floor:' + name:24s} committed {speedup:6.2f}x  floor {floor:6.2f}x  {status}")
        if speedup < floor:
            failures.append(
                f"{name}: committed speedup {speedup:.2f}x is below the "
                f"absolute floor {floor:.2f}x"
            )
    return failures


def check_provider(fresh: dict) -> list[str]:
    """Gates on the fresh record's provider-indirection section."""
    section = fresh.get("provider")
    if section is None:
        return []  # records from before the provider layer
    failures = []
    ratio = float(section["overhead_ratio"])
    status = "ok" if ratio <= MAX_PROVIDER_OVERHEAD else "FAIL"
    print(
        f"{'provider_indirection':24s} overhead {ratio:10.2f}x  "
        f"ceiling {MAX_PROVIDER_OVERHEAD:6.2f}x  {status}"
    )
    if ratio > MAX_PROVIDER_OVERHEAD:
        failures.append(
            f"provider indirection adds {ratio:.2f}x to dataset materialisation "
            f"(ceiling {MAX_PROVIDER_OVERHEAD:.2f}x)"
        )
    if not section.get("bit_identical", False):
        failures.append("provider-materialised dataset diverged from direct generation")
    return failures


def check_sweep(fresh: dict) -> list[str]:
    """Gates on the fresh record's sweep-throughput section."""
    section = fresh.get("sweep")
    if section is None:
        return []  # records from before the stacked executor
    identical = bool(section.get("serial_equals_parallel", False))
    status = "ok" if identical else "FAIL"
    print(
        f"{'sweep_fanout':24s} {section.get('points', 0):4d} points  "
        f"serial {float(section.get('serial_seconds', 0.0)):7.3f}s  "
        f"stacked speedup {float(section.get('stacked_speedup', 0.0)):5.2f}x  "
        f"identical {identical}  {status}"
    )
    if not identical:
        return ["sweep results differ across serial / parallel / stacked paths"]
    return []


def check_campaign(fresh: dict) -> list[str]:
    """Gates on the fresh record's streaming-campaign section."""
    section = fresh.get("campaign")
    if section is None:
        return []  # records from before the campaign pipeline
    failures = []
    identical = bool(section.get("identical", False))
    ratio = float(section.get("overhead_ratio", 0.0))
    legacy_peak = float(section.get("legacy_peak_mb", 0.0))
    stream_peak = float(section.get("streaming_peak_mb", 0.0))
    if not identical:
        failures.append("streaming campaign pipeline diverged from the eager aggregate path")
    if ratio > MAX_CAMPAIGN_OVERHEAD:
        failures.append(
            f"streaming campaign overhead {ratio:.2f}x exceeds the "
            f"{MAX_CAMPAIGN_OVERHEAD:.2f}x ceiling over the eager path"
        )
    if stream_peak > legacy_peak * MAX_CAMPAIGN_PEAK_RATIO:
        failures.append(
            f"streaming campaign peak memory {stream_peak:.1f} MiB is not bounded: "
            f"it exceeds {MAX_CAMPAIGN_PEAK_RATIO:.0%} of the eager path's "
            f"{legacy_peak:.1f} MiB on a {section.get('points', 0)}-point campaign"
        )
    print(
        f"{'campaign_pipeline':24s} {section.get('points', 0):5d} points  "
        f"overhead {ratio:5.2f}x  peak {legacy_peak:6.1f} -> {stream_peak:6.1f} MiB  "
        f"identical {identical}  {'ok' if not failures else 'FAIL'}"
    )
    return failures


def check_serve(baseline: dict, fresh: dict) -> list[str]:
    """Gates on the serving benchmark: identity, batching, and QPS."""
    section = fresh.get("serve")
    if section is None:
        return []  # records from before the serving layer
    failures = []
    levels = section.get("levels", {})
    base_levels = baseline.get("serve", {}).get("levels", {})
    widest = max(levels, key=lambda key: levels[key]["concurrency"], default=None)
    for key, level in sorted(levels.items(), key=lambda item: item[1]["concurrency"]):
        problems = []
        if not level.get("allocations_identical", False):
            problems.append(f"serve {key}: served allocations diverged from the offline replay")
        qps = float(level["qps"])
        if key in base_levels:
            floor = float(base_levels[key]["qps"]) * MIN_SERVE_QPS_RATIO
            if qps < floor:
                problems.append(
                    f"serve {key}: fresh {qps:.0f} qps is below "
                    f"{MIN_SERVE_QPS_RATIO:.0%} of the committed "
                    f"{float(base_levels[key]['qps']):.0f} qps"
                )
        if key == widest and float(level["batch_size_mean"]) < MIN_SERVE_BATCH_MEAN:
            problems.append(
                f"serve {key}: mean batch size {level['batch_size_mean']:.2f} shows "
                f"the micro-batcher is not coalescing (floor {MIN_SERVE_BATCH_MEAN:.1f})"
            )
        print(
            f"{'serve:' + key:24s} qps {qps:8.1f}  p99 {float(level['p99_ms']):7.2f}ms  "
            f"batch mean {float(level['batch_size_mean']):5.2f}  "
            f"identical {bool(level.get('allocations_identical', False))}  "
            f"{'ok' if not problems else 'FAIL'}"
        )
        failures.extend(problems)
    failures.extend(_check_sharded(baseline, section))
    # Absolute floors pin the committed record, full runs only.
    if int(baseline.get("trace", {}).get("days", 0)) >= 365:
        for key, floor in COMMITTED_SERVE_QPS_FLOORS.items():
            if key not in base_levels:
                continue
            qps = float(base_levels[key]["qps"])
            status = "ok" if qps >= floor else "FAIL"
            print(
                f"{'floor:serve:' + key:24s} committed {qps:8.1f} qps  "
                f"floor {floor:6.0f}  {status}"
            )
            if qps < floor:
                failures.append(
                    f"serve {key}: committed {qps:.0f} qps is below the "
                    f"absolute floor {floor:.0f}"
                )
        if "c1" in base_levels and "p50_ms" in base_levels["c1"]:
            p50 = float(base_levels["c1"]["p50_ms"])
            status = "ok" if p50 <= COMMITTED_SERVE_C1_P50_MS else "FAIL"
            print(
                f"{'floor:serve:c1:p50':24s} committed {p50:8.2f} ms   "
                f"ceil  {COMMITTED_SERVE_C1_P50_MS:6.1f}  {status}"
            )
            if p50 > COMMITTED_SERVE_C1_P50_MS:
                failures.append(
                    f"serve c1: committed p50 {p50:.2f} ms exceeds the "
                    f"{COMMITTED_SERVE_C1_P50_MS:.1f} ms ceiling — the lone-client "
                    "fast path has regressed"
                )
        for key, level in base_levels.items():
            if not level.get("allocations_identical", False):
                failures.append(
                    f"serve {key}: committed record shows served allocations "
                    "diverged from the offline replay"
                )
    return failures


def _check_sharded(baseline: dict, fresh_section: dict) -> list[str]:
    """Gates on the sharded serving leg (fresh identity + committed scaling)."""
    failures = []
    sharded = fresh_section.get("sharded")
    if sharded and "skipped" not in sharded:
        if not sharded.get("allocations_identical", False):
            failures.append(
                "serve sharded: a shard's served allocations diverged from its "
                "offline replay"
            )
        base_sharded = baseline.get("serve", {}).get("sharded", {})
        qps = float(sharded["qps"])
        if base_sharded.get("qps"):
            floor = float(base_sharded["qps"]) * MIN_SERVE_QPS_RATIO
            if qps < floor:
                failures.append(
                    f"serve sharded: fresh {qps:.0f} qps is below "
                    f"{MIN_SERVE_QPS_RATIO:.0%} of the committed "
                    f"{float(base_sharded['qps']):.0f} qps"
                )
        print(
            f"{'serve:sharded':24s} qps {qps:8.1f}  "
            f"p99 {float(sharded['p99_ms']):7.2f}ms  "
            f"workers {sharded['workers']}  "
            f"identical {bool(sharded.get('allocations_identical', False))}  "
            f"{'ok' if not failures else 'FAIL'}"
        )

    # Committed scaling gate, full runs only: the recorded cpu count
    # decides whether sharding must win (parallel cores) or merely
    # must not collapse (time-sliced cores).
    if int(baseline.get("trace", {}).get("days", 0)) >= 365:
        base_serve = baseline.get("serve", {})
        base_sharded = base_serve.get("sharded", {})
        base_c32 = base_serve.get("levels", {}).get("c32", {})
        if base_sharded.get("qps") and base_c32.get("qps"):
            cpu_count = int(base_serve.get("cpu_count") or 1)
            workers = int(base_sharded.get("workers", 2))
            parallel = cpu_count >= 2 * workers
            ratio = SHARDED_PARALLEL_SPEEDUP if parallel else SHARDED_NO_COLLAPSE_RATIO
            mode = "parallel" if parallel else "no-collapse"
            floor = float(base_c32["qps"]) * ratio
            qps = float(base_sharded["qps"])
            status = "ok" if qps >= floor else "FAIL"
            print(
                f"{'floor:serve:sharded':24s} committed {qps:8.1f} qps  "
                f"floor {floor:6.0f} ({mode}, {cpu_count} cpus)  {status}"
            )
            if qps < floor:
                failures.append(
                    f"serve sharded: committed {qps:.0f} qps is below the {mode} "
                    f"floor {floor:.0f} ({ratio:.1f}x of the single-worker c32 "
                    f"record on a {cpu_count}-cpu box)"
                )
    return failures


def check(baseline: dict, fresh: dict, max_regression: float) -> list[str]:
    """Every violated gate, as human-readable failure messages."""
    failures = (
        check_committed_floors(baseline)
        + check_provider(fresh)
        + check_sweep(fresh)
        + check_campaign(fresh)
        + check_profile(fresh)
        + check_kernel(fresh)
        + check_float32(fresh)
        + check_serve(baseline, fresh)
    )
    base_runs = baseline.get("runs", {})
    fresh_runs = fresh.get("runs", {})
    shared = sorted(set(base_runs) & set(fresh_runs))
    if not shared:
        return failures + ["no benchmark cases shared between baseline and fresh record"]
    for name in shared:
        base_speedup = float(base_runs[name]["speedup"])
        fresh_speedup = float(fresh_runs[name]["speedup"])
        floor = base_speedup * (1.0 - max_regression)
        status = "ok" if fresh_speedup >= floor else "FAIL"
        print(
            f"{name:24s} committed {base_speedup:6.2f}x  fresh {fresh_speedup:6.2f}x  "
            f"floor {floor:6.2f}x  {status}"
        )
        if fresh_speedup < floor:
            failures.append(
                f"{name}: speedup {fresh_speedup:.2f}x is more than "
                f"{max_regression:.0%} below the committed {base_speedup:.2f}x"
            )
        max_err = float(fresh_runs[name].get("max_load_abs_err", 0.0))
        if max_err > 1e-6:
            failures.append(
                f"{name}: batched pipeline diverged from reference "
                f"(max abs err {max_err:.2e})"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_engine.json")
    parser.add_argument("--fresh", required=True)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional speedup loss vs the committed record",
    )
    args = parser.parse_args()

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)

    failures = check(baseline, fresh, args.max_regression)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("benchmark gate passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
