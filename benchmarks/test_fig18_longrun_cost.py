"""Bench: regenerate Fig. 18 (39-month cost; dynamic beats static)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig18_longrun_cost


def test_fig18_longrun_cost(benchmark, warm):
    result = run_once(benchmark, fig18_longrun_cost.run)
    print("\n" + result.to_text())
    relaxed = result.series["relaxed"]
    followed = result.series["followed"]
    static = float(result.series["static_cheapest_hub"][0])

    # Monotone decreasing cost curves, relaxed dominating followed.
    assert np.all(np.diff(relaxed) <= 2e-3)
    assert np.all(np.diff(followed) <= 2e-3)
    assert np.all(relaxed <= followed + 1e-9)

    # The headline: the dynamic solution at large thresholds beats the
    # best static placement (paper: ~0.55 vs ~0.65; ours ~0.64 vs
    # ~0.67 — smaller margin, same ordering; see EXPERIMENTS.md).
    assert relaxed.min() < static - 0.01
    # And the static placement itself beats the baseline mix.
    assert static < 1.0
