"""Bench: regenerate Fig. 14 (the 24-day traffic trace)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig14_traffic


def test_fig14_traffic(benchmark, warm):
    result = run_once(benchmark, fig14_traffic.run)
    print("\n" + result.to_text())
    rows = dict((r[0], r[1]) for r in result.rows)
    # Paper: >2M hits/s global peak, ~1.25M US.
    assert rows["global peak (M hits/s)"] > 1.6
    assert rows["US peak (M hits/s)"] == pytest.approx(1.25, rel=0.25)
    assert rows["days covered"] >= 24.0
    # The diurnal oscillation is strong and visible.
    us = result.series["usa"]
    assert us.max() / us.min() > 1.8
