"""Bench: regenerate Fig. 16 (24-day cost vs distance threshold)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig16_cost_vs_distance


def test_fig16_cost_vs_distance(benchmark, warm):
    result = run_once(benchmark, fig16_cost_vs_distance.run)
    print("\n" + result.to_text())
    relaxed = result.series["relaxed"]
    followed = result.series["followed"]

    # Costs fall (weakly) as the threshold rises, in both modes
    # (sub-0.2%-point wiggle allowed: tiny thresholds only shuffle the
    # metro-fallback states).
    assert np.all(np.diff(relaxed) <= 2e-3)
    assert np.all(np.diff(followed) <= 2e-3)
    # Everything beats the baseline (normalised cost < 1)...
    assert relaxed.max() < 1.0
    assert followed.max() < 1.0
    # ...and the relaxed curve dominates the followed one.
    assert np.all(relaxed <= followed + 1e-9)
    # Large thresholds buy >20% under the (0% idle, 1.1 PUE) model.
    assert relaxed.min() < 0.80
