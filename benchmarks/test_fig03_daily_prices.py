"""Bench: regenerate Fig. 3 (daily average prices, 2006-2009)."""

from benchmarks.conftest import run_once
from repro.experiments import fig03_daily_prices


def test_fig03_daily_prices(benchmark, warm):
    result = run_once(benchmark, fig03_daily_prices.run)
    print("\n" + result.to_text())
    ratios = {row[0]: row[3] for row in result.rows}
    # 2008 gas hump lifts gas-coupled hubs; the hydro Northwest stays flat.
    for hub in ("DOM", "ERCOT-H", "NP15"):
        assert ratios[hub] > 1.10, hub
    assert abs(ratios["MID-C"] - 1.0) < 0.12
    # Spring run-off dip: April well below the annual mean at MID-C.
    april_note = result.notes[0]
    april_ratio = float(april_note.split("=")[1].split("(")[0])
    assert april_ratio < 0.85
