"""Ablation: the §5.1 variable-power exponent r (1.4 vs linear).

The Google study fit r = 1.4 but found a linear model (r = 1) also
reasonably accurate; §5.1 adopts 1.4. The exponent sets how much of a
cluster's energy is load-dependent at ~30% utilization (2u - u^r is
more concave for larger r), so savings *grow* with r; this bench pins
that direction and verifies the headline conclusion (double-digit
savings for elastic systems) holds across the whole plausible range.
"""

from benchmarks.conftest import run_once
from repro.energy.model import EnergyModelParams
from repro.experiments.common import baseline_24day, price_run_24day


def sweep():
    base = baseline_24day()
    priced = price_run_24day(1500.0, follow_95_5=False)
    rows = []
    for exponent in (1.0, 1.2, 1.4, 2.0):
        params = EnergyModelParams(idle_fraction=0.0, pue=1.1, exponent=exponent)
        rows.append((exponent, priced.savings_vs(base, params) * 100.0))
    return rows


def test_ablation_energy_exponent(benchmark, warm):
    rows = run_once(benchmark, sweep)
    print()
    for exponent, savings in rows:
        print(f"  r = {exponent:.1f} -> savings {savings:5.1f}%")
    values = [s for _, s in rows]
    # More concave variable power (larger r) -> larger routable share
    # -> larger savings; and the headline conclusion (double-digit
    # savings for an elastic system) holds at every exponent.
    assert values == sorted(values)
    assert min(values) > 10.0
