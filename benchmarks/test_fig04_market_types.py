"""Bench: regenerate Fig. 4 (market-type comparison, NYC)."""

from benchmarks.conftest import run_once
from repro.experiments import fig04_market_types


def test_fig04_market_types(benchmark, warm):
    result = run_once(benchmark, fig04_market_types.run)
    print("\n" + result.to_text())
    for row in result.rows:
        _, five_min_sigma, hourly_sigma, da_sigma = row
        # RT 5-min most volatile, day-ahead least, within each window.
        assert five_min_sigma >= hourly_sigma
        assert hourly_sigma >= da_sigma * 0.7  # DA can approach RT in calm windows
    # And across both windows, RT hourly is the more volatile market.
    assert sum(r[2] for r in result.rows) > sum(r[3] for r in result.rows)
