"""Ablation: the greedy allocator vs an oracle lower bound (DESIGN §4).

The paper's optimizer is a greedy per-client assignment with iterative
spill, not an LP. This bench bounds its optimality gap: the oracle
relaxation routes every hit to the cheapest in-radius cluster with no
capacity or 95/5 limits and with *today's* (undelayed) prices — a cost
no feasible policy can beat.
"""


from benchmarks.conftest import run_once
from repro.energy import FULLY_ELASTIC
from repro.experiments.common import default_dataset, default_problem, trace_24day
from repro.routing.price import PriceConsciousRouter
from repro.sim.engine import SimulationOptions, simulate


def compare():
    problem = default_problem()
    dataset = default_dataset()
    trace = trace_24day()
    router = PriceConsciousRouter(problem, distance_threshold_km=2500.0)
    greedy = simulate(trace, dataset, problem, router)

    clairvoyant = PriceConsciousRouter(problem, distance_threshold_km=2500.0, price_threshold=0.0)
    oracle = simulate(
        trace,
        dataset,
        problem,
        clairvoyant,
        SimulationOptions(reaction_delay_hours=0),
    )
    params = FULLY_ELASTIC
    return greedy.total_cost(params), oracle.total_cost(params)


def test_ablation_optimizer_gap(benchmark, warm):
    greedy_cost, oracle_cost = run_once(benchmark, compare)
    gap = greedy_cost / oracle_cost - 1.0
    print(f"\n  greedy ${greedy_cost:,.0f} vs oracle ${oracle_cost:,.0f} (gap {gap:.1%})")
    assert oracle_cost <= greedy_cost * 1.001
    # The hour-lagged, $5-threshold policy stays within a modest
    # factor of its clairvoyant twin: stale prices are the main tax.
    assert gap < 0.40
