"""Bench: regenerate Fig. 17 (client-server distance vs threshold)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig17_distance_profile


def test_fig17_distance_profile(benchmark, warm):
    result = run_once(benchmark, fig17_distance_profile.run)
    print("\n" + result.to_text())
    thresholds = result.series["thresholds_km"]
    mean_relaxed = result.series["mean_relaxed"]
    p99_relaxed = result.series["p99_relaxed"]

    # Mean distance grows with the threshold (clients chase cheaper,
    # further clusters) — compare the ends, allowing local wiggle.
    assert mean_relaxed[-1] > mean_relaxed[0]
    # p99 distance never exceeds threshold + the fallback scale: the
    # distance constraint binds except for states with no in-radius
    # cluster (Mountain West), whose metro fallback sets the floor.
    fallback_p99 = p99_relaxed[0]
    for threshold, p99 in zip(thresholds[1:], p99_relaxed[1:]):
        assert p99 <= max(threshold, fallback_p99) + 100.0
    # Documented deviation from the paper's "at most 800 km at 1100 km
    # threshold": with exactly nine cluster cities, ~1-2% of demand
    # (Mountain West states) must travel ~1700 km regardless, so our
    # p99 at the same operating point sits at the fallback scale.
    idx_1000 = int(np.argmin(np.abs(thresholds - 1000.0)))
    assert p99_relaxed[idx_1000] <= fallback_p99 + 100.0
