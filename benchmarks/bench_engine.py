#!/usr/bin/env python3
"""Engine benchmark: batched pipeline vs the per-step reference loop.

Times :func:`repro.sim.simulate` (the staged, vectorised pipeline)
against :func:`repro.sim.simulate_per_step` (the original §6.1
one-``allocate``-per-step loop) on a one-year hourly trace, verifies
the two produce identical loads, and writes the wall-clock record to
``BENCH_engine.json`` so the repository's performance trajectory is
tracked in-tree.

Run:  PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--output PATH]

``--quick`` shrinks the trace to 60 days for CI smoke runs; the
committed BENCH_engine.json should come from a full run.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from datetime import datetime

import numpy as np

from repro.markets.calendar import HourlyCalendar
from repro.markets.generator import MarketConfig, generate_market
from repro.routing import (
    BaselineProximityRouter,
    PriceConsciousRouter,
    RoutingProblem,
)
from repro.sim import SimulationOptions, simulate, simulate_per_step
from repro.traffic.clusters import akamai_like_deployment
from repro.traffic.synthetic import TraceConfig, make_trace
from repro.traffic.trace import HourOfWeekWorkload

#: The market starts here; the benchmark trace starts one month in.
MARKET_START = datetime(2008, 1, 1)


def _time(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_provider(repeats: int) -> dict:
    """Provider-indirection overhead on dataset materialisation.

    The provider layer sits between market specs and the generator; it
    must add nothing measurable on top of direct generation, and the
    dataset it hands the engine must be bit-identical to a direct one.
    """
    from repro.markets.providers import SYNTHETIC, build_provider
    from repro.scenarios.spec import MarketSpec

    config = MarketConfig(start=MARKET_START, months=3, seed=2009)
    market = MarketSpec(start=MARKET_START, months=3, seed=2009)
    via_provider = build_provider(SYNTHETIC).dataset(market)
    direct = generate_market(config)
    identical = via_provider.price_matrix.tobytes() == direct.price_matrix.tobytes()

    t_direct = _time(lambda: generate_market(config), repeats)
    t_provider = _time(lambda: build_provider(SYNTHETIC).dataset(market), repeats)
    ratio = t_provider / t_direct
    print(
        f"{'provider_indirection':24s} direct  {t_direct:7.3f}s  provider {t_provider:7.3f}s  "
        f"ratio {ratio:5.2f}x  identical {identical}"
    )
    return {
        "direct_seconds": round(t_direct, 4),
        "provider_seconds": round(t_provider, 4),
        "overhead_ratio": round(ratio, 3),
        "bit_identical": identical,
    }


def bench(days: int, repeats: int) -> dict:
    months = max(3, days // 30 + 2)
    dataset = generate_market(MarketConfig(start=MARKET_START, months=months, seed=2009))
    base_trace = make_trace(TraceConfig(start=datetime(2008, 2, 1), seed=1224))
    workload = HourOfWeekWorkload.from_trace(base_trace)
    trace = workload.expand(HourlyCalendar(datetime(2008, 2, 1), days * 24))
    problem = RoutingProblem(akamai_like_deployment())

    baseline_router = BaselineProximityRouter(problem)
    price_router = PriceConsciousRouter(problem, distance_threshold_km=1500.0)
    caps = simulate(trace, dataset, problem, baseline_router).percentiles_95()

    cases = {
        "price_unconstrained": (price_router, None),
        "price_followed_95_5": (
            price_router,
            SimulationOptions(bandwidth_caps=caps),
        ),
        "baseline_proximity": (baseline_router, None),
    }

    runs = {}
    for name, (router, options) in cases.items():
        batched = simulate(trace, dataset, problem, router, options)
        reference = simulate_per_step(trace, dataset, problem, router, options)
        max_err = float(np.abs(batched.loads - reference.loads).max())
        t_batched = _time(lambda: simulate(trace, dataset, problem, router, options), repeats)
        t_reference = _time(
            lambda: simulate_per_step(trace, dataset, problem, router, options),
            repeats,
        )
        runs[name] = {
            "batched_seconds": round(t_batched, 4),
            "per_step_seconds": round(t_reference, 4),
            "speedup": round(t_reference / t_batched, 2),
            "max_load_abs_err": max_err,
        }
        print(
            f"{name:24s} batched {t_batched:7.3f}s  per-step {t_reference:7.3f}s  "
            f"speedup {t_reference / t_batched:5.1f}x  max err {max_err:.2e}"
        )

    return {
        "benchmark": "sim.engine batched pipeline vs per-step reference",
        "generated_by": "benchmarks/bench_engine.py",
        "trace": {
            "kind": "hour-of-week hourly",
            "days": days,
            "n_steps": trace.n_steps,
            "n_states": trace.n_states,
            "n_clusters": problem.n_clusters,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "runs": runs,
        "provider": bench_provider(repeats),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="60-day trace for CI smoke runs")
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument("--repeats", type=int, default=2, help="timing repeats (best-of)")
    args = parser.parse_args()

    days = 60 if args.quick else 365
    record = bench(days, args.repeats)
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")

    unconstrained = record["runs"]["price_unconstrained"]
    if unconstrained["max_load_abs_err"] > 1e-6:
        print("FAIL: batched pipeline diverged from the per-step reference")
        return 1
    if not args.quick and unconstrained["speedup"] < 5.0:
        print("FAIL: unconstrained price-optimizer speedup below 5x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
