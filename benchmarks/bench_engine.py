#!/usr/bin/env python3
"""Engine benchmark: batched pipeline vs the per-step reference loop.

Times :func:`repro.sim.simulate` (the staged, vectorised pipeline)
against :func:`repro.sim.simulate_per_step` (the original §6.1
one-``allocate``-per-step loop) on a one-year hourly trace, verifies
the two produce identical loads, and writes the wall-clock record to
``BENCH_engine.json`` so the repository's performance trajectory is
tracked in-tree.

Run:  PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--output PATH]

``--quick`` shrinks the trace to 60 days for CI smoke runs; the
committed BENCH_engine.json should come from a full run.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import time
from datetime import datetime

import numpy as np

from repro.markets.calendar import HourlyCalendar
from repro.markets.generator import MarketConfig, generate_market
from repro.routing import (
    BaselineProximityRouter,
    JointOptimizationRouter,
    PriceConsciousRouter,
    RoutingProblem,
)
from repro.sim import SimulationOptions, simulate, simulate_per_step
from repro.traffic.clusters import akamai_like_deployment
from repro.traffic.synthetic import TraceConfig, make_trace
from repro.traffic.trace import HourOfWeekWorkload

#: The market starts here; the benchmark trace starts one month in.
MARKET_START = datetime(2008, 1, 1)


def _time(fn, repeats: int) -> float:
    """Median wall-clock over ``repeats`` runs, after one warm-up call.

    The warm-up absorbs one-time costs (lazy imports, cache fills, a
    numba JIT when that kernel is selected) so the timed runs measure
    steady state; the median is robust to the one slow outlier a
    shared machine always produces, where best-of quietly rewards
    noise.
    """
    fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(statistics.median(times))


def _with_env(key: str, value: str, fn):
    """Run ``fn`` with one environment variable overridden."""
    old = os.environ.get(key)
    os.environ[key] = value
    try:
        return fn()
    finally:
        if old is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = old


def bench_provider(repeats: int) -> dict:
    """Provider-indirection overhead on dataset materialisation.

    The provider layer sits between market specs and the generator; it
    must add nothing measurable on top of direct generation, and the
    dataset it hands the engine must be bit-identical to a direct one.
    """
    from repro.markets.providers import SYNTHETIC, build_provider
    from repro.scenarios.spec import MarketSpec

    config = MarketConfig(start=MARKET_START, months=3, seed=2009)
    market = MarketSpec(start=MARKET_START, months=3, seed=2009)
    via_provider = build_provider(SYNTHETIC).dataset(market)
    direct = generate_market(config)
    identical = via_provider.price_matrix.tobytes() == direct.price_matrix.tobytes()

    t_direct = _time(lambda: generate_market(config), repeats)
    t_provider = _time(lambda: build_provider(SYNTHETIC).dataset(market), repeats)
    ratio = t_provider / t_direct
    print(
        f"{'provider_indirection':24s} direct  {t_direct:7.3f}s  provider {t_provider:7.3f}s  "
        f"ratio {ratio:5.2f}x  identical {identical}"
    )
    return {
        "direct_seconds": round(t_direct, 4),
        "provider_seconds": round(t_provider, 4),
        "overhead_ratio": round(ratio, 3),
        "bit_identical": identical,
    }


def bench_sweep(jobs: int) -> dict:
    """Sweep fan-out throughput: the stacked executor end to end.

    Runs the ``joint-penalty-grid`` sweep (the vectorised joint batch
    path under seeded traffic replicas) serial, parallel, and with the
    stacked replica path disabled, asserting serial == parallel on the
    way. Wall-clock is machine-dependent; the committed gates are the
    identity flag and the engine-level speedups above.
    """
    from repro import artifacts, scenarios, sweeps
    from repro.scenarios import runner

    spec = sweeps.get("joint-penalty-grid")

    # The benchmark must measure execution, not the store: an ambient
    # REPRO_ARTIFACT_DIR (or a warm store from an earlier run) would
    # serve the sweep artifact back and make every timing — and the
    # identity gate — vacuous. Disable the store for the section.
    artifacts.configure(None)
    try:
        scenarios.clear_caches()
        t0 = time.perf_counter()
        serial = sweeps.run_sweep(spec, jobs=1)
        t_serial = time.perf_counter() - t0

        scenarios.clear_caches()
        t0 = time.perf_counter()
        parallel = sweeps.run_sweep(spec, jobs=jobs)
        t_parallel = time.perf_counter() - t0

        # The pre-refactor execution shape: every point through its own
        # run() pipeline (stacking neutered), for the stacked-path
        # speedup.
        real = runner._execute_stacked
        runner._execute_stacked = lambda group: None
        try:
            scenarios.clear_caches()
            t0 = time.perf_counter()
            unstacked = sweeps.run_sweep(spec, jobs=1)
            t_unstacked = time.perf_counter() - t0
        finally:
            runner._execute_stacked = real
    finally:
        artifacts.reset()

    identical = serial == parallel and serial == unstacked
    points = spec.n_points
    print(
        f"{'sweep_joint_penalty':24s} serial  {t_serial:7.3f}s  jobs={jobs} {t_parallel:7.3f}s  "
        f"unstacked {t_unstacked:7.3f}s  identical {identical}"
    )
    return {
        "sweep": spec.name,
        "points": points,
        "jobs": jobs,
        "serial_seconds": round(t_serial, 4),
        "parallel_seconds": round(t_parallel, 4),
        "unstacked_seconds": round(t_unstacked, 4),
        "points_per_second": round(points / t_serial, 2),
        "stacked_speedup": round(t_unstacked / t_serial, 3),
        "serial_equals_parallel": identical,
    }


def bench_campaign() -> dict:
    """Streaming campaign pipeline vs the eager expand/aggregate path.

    Runs the 10^4-point ``campaign-grid`` through both execution
    shapes with simulation stubbed out — metrics are a pure function
    of point identity, so the section measures the *pipeline* (planner,
    reducers, finalisation vs eager expansion and dict aggregation),
    not the engine. Two gates ride on the record: the streamed result
    must equal the eager one exactly, and streaming must stay cheap in
    time (small overhead ratio) while winning on peak parent memory —
    the eager path holds every point and metric dict at once, the
    campaign path only open groups and per-cell reducer states.
    """
    import tracemalloc

    from repro import artifacts, sweeps
    from repro.sweeps import executor
    from repro.sweeps.aggregate import aggregate
    from repro.sweeps.spec import expand

    spec = sweeps.get("campaign-grid")

    def stub_metrics(scenario, energy):
        params = scenario.router.kwargs
        value = (
            float(scenario.trace.seed % 9973)
            + params["distance_threshold_km"] * 1e-3
            + params["price_threshold"]
        )
        return {"savings_pct": value * 1e-3}

    def legacy():
        points = expand(spec)
        metrics = {p.index: stub_metrics(p.scenario, p.energy) for p in points}
        return aggregate(spec, points, metrics)

    def streamed():
        return sweeps.run_sweep(spec, jobs=1)

    def trace_run(fn):
        tracemalloc.start()
        try:
            t0 = time.perf_counter()
            result = fn()
            seconds = time.perf_counter() - t0
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return result, seconds, peak

    real_warm = executor._warm_group
    real_metrics = executor.point_metrics
    executor._warm_group = lambda group: None
    executor.point_metrics = stub_metrics
    artifacts.configure(None)
    try:
        legacy()  # warm-up: lazy imports and allocator steady state
        legacy_result, t_legacy, legacy_peak = trace_run(legacy)
        streamed()
        stream_result, t_stream, stream_peak = trace_run(streamed)
    finally:
        executor._warm_group = real_warm
        executor.point_metrics = real_metrics
        artifacts.reset()

    identical = stream_result.to_json_dict() == legacy_result.to_json_dict()
    ratio = t_stream / t_legacy
    print(
        f"{'campaign_pipeline':24s} legacy  {t_legacy:7.3f}s  streaming {t_stream:7.3f}s  "
        f"ratio {ratio:5.2f}x  peak {legacy_peak / 2**20:6.1f} -> {stream_peak / 2**20:6.1f} MiB  "
        f"identical {identical}"
    )
    return {
        "sweep": spec.name,
        "points": spec.n_points,
        "legacy_seconds": round(t_legacy, 4),
        "streaming_seconds": round(t_stream, 4),
        "overhead_ratio": round(ratio, 3),
        "legacy_peak_mb": round(legacy_peak / 2**20, 3),
        "streaming_peak_mb": round(stream_peak / 2**20, 3),
        "identical": identical,
    }


def bench_profile(days: int) -> dict:
    """Per-phase wall-clock attribution of the engine pipeline.

    Every speedup claim should point at the phase that earned it; this
    section records where the batched pipeline actually spends its time
    (``greedy_repair`` is nested inside ``routing`` by design).
    """
    from repro.sim.profiling import profile_cases

    report = profile_cases(days=days, repeats=1)
    for case, phases in report.items():
        routing = phases.get("routing", 0.0)
        greedy = phases.get("greedy_repair", 0.0)
        print(
            f"{'profile:' + case:38s} total {phases['total']:7.3f}s  "
            f"routing {routing:7.3f}s  greedy {greedy:7.3f}s"
        )
    return {"days": days, "cases": report}


def bench_kernel(trace, dataset, problem, router, options, repeats: int) -> dict:
    """Kernel/threading variants against the default numpy engine.

    Each variant must reproduce the numpy kernel's loads and distance
    histogram *bitwise* — the selector exists to buy speed, never to
    move a result. The numba variant is recorded as unavailable (and
    skipped) when the optional dependency is not installed.
    """
    from repro.kernels import KERNEL_ENV, THREADS_ENV, numba_available

    reference = simulate(trace, dataset, problem, router, options)
    t_numpy = _time(lambda: simulate(trace, dataset, problem, router, options), repeats)
    section = {"case": "joint_followed_95_5", "numpy_seconds": round(t_numpy, 4), "variants": {}}

    def run_variant(env_key, env_value):
        result = _with_env(
            env_key, env_value, lambda: simulate(trace, dataset, problem, router, options)
        )
        identical = (
            result.loads.tobytes() == reference.loads.tobytes()
            and result.distance_profile.histogram.tobytes()
            == reference.distance_profile.histogram.tobytes()
        )
        seconds = _with_env(
            env_key,
            env_value,
            lambda: _time(lambda: simulate(trace, dataset, problem, router, options), repeats),
        )
        return identical, seconds

    if numba_available():
        identical, seconds = run_variant(KERNEL_ENV, "numba")
        section["variants"]["numba"] = {
            "available": True,
            "seconds": round(seconds, 4),
            "speedup_vs_numpy": round(t_numpy / seconds, 2),
            "bit_identical": identical,
        }
    else:
        section["variants"]["numba"] = {"available": False}

    identical, seconds = run_variant(THREADS_ENV, "2")
    section["variants"]["threads_2"] = {
        "available": True,
        "seconds": round(seconds, 4),
        "speedup_vs_numpy": round(t_numpy / seconds, 2),
        "bit_identical": identical,
    }

    for name, variant in section["variants"].items():
        if not variant.get("available"):
            print(f"{'kernel:' + name:38s} unavailable (optional dependency not installed)")
            continue
        print(
            f"{'kernel:' + name:38s} {variant['seconds']:7.3f}s  "
            f"vs numpy {variant['speedup_vs_numpy']:5.2f}x  "
            f"bit_identical {variant['bit_identical']}"
        )
    return section


def bench_float32(trace, dataset, problem, router, options, repeats: int) -> dict:
    """The opt-in float32 engine mode: speed and accuracy vs float64.

    Float32 trades the bit-identity contract for cheaper memory
    traffic; the record keeps both the speed ratio and the realised
    error so the documented tolerance stays an observed number.
    """
    problem32 = RoutingProblem(akamai_like_deployment(), dtype="float32")
    router32 = JointOptimizationRouter(
        problem32, distance_penalty_per_1000km=10.0, congestion_penalty=50.0
    )
    r64 = simulate(trace, dataset, problem, router, options)
    r32 = simulate(trace, dataset, problem32, router32, options)
    cost64 = float((r64.loads * r64.paid_prices).sum())
    cost32 = float((r32.loads * r32.paid_prices).sum())
    cost_rel_err = abs(cost32 - cost64) / abs(cost64)
    max_load_rel_err = float(np.max(np.abs(r32.loads - r64.loads)) / np.max(r64.loads))
    t64 = _time(lambda: simulate(trace, dataset, problem, router, options), repeats)
    t32 = _time(lambda: simulate(trace, dataset, problem32, router32, options), repeats)
    section = {
        "case": "joint_followed_95_5",
        "float64_seconds": round(t64, 4),
        "float32_seconds": round(t32, 4),
        "speedup_vs_float64": round(t64 / t32, 3),
        "cost_rel_err": cost_rel_err,
        "max_load_rel_err": max_load_rel_err,
    }
    print(
        f"{'float32:joint_followed_95_5':38s} {t32:7.3f}s  vs f64 {t64 / t32:5.2f}x  "
        f"cost rel err {cost_rel_err:.2e}  max load rel err {max_load_rel_err:.2e}"
    )
    return section


def bench_serve_section(quick: bool) -> dict:
    """Serving QPS/latency through the asyncio server (bench_serve.py)."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from bench_serve import bench_serve

    return bench_serve(requests_per_level=400 if quick else 2000)


def bench(days: int, repeats: int) -> dict:
    months = max(3, days // 30 + 2)
    dataset = generate_market(MarketConfig(start=MARKET_START, months=months, seed=2009))
    base_trace = make_trace(TraceConfig(start=datetime(2008, 2, 1), seed=1224))
    workload = HourOfWeekWorkload.from_trace(base_trace)
    trace = workload.expand(HourlyCalendar(datetime(2008, 2, 1), days * 24))
    problem = RoutingProblem(akamai_like_deployment())

    baseline_router = BaselineProximityRouter(problem)
    price_router = PriceConsciousRouter(problem, distance_threshold_km=1500.0)
    joint_router = JointOptimizationRouter(
        problem, distance_penalty_per_1000km=10.0, congestion_penalty=50.0
    )
    caps = simulate(trace, dataset, problem, baseline_router).percentiles_95()

    cases = {
        "price_unconstrained": (price_router, None),
        "price_followed_95_5": (
            price_router,
            SimulationOptions(bandwidth_caps=caps),
        ),
        "baseline_proximity": (baseline_router, None),
        "joint_soft_objective": (joint_router, None),
        "joint_followed_95_5": (
            joint_router,
            SimulationOptions(bandwidth_caps=caps),
        ),
    }

    runs = {}
    for name, (router, options) in cases.items():
        batched = simulate(trace, dataset, problem, router, options)
        reference = simulate_per_step(trace, dataset, problem, router, options)
        max_err = float(np.abs(batched.loads - reference.loads).max())
        t_batched = _time(lambda: simulate(trace, dataset, problem, router, options), repeats)
        t_reference = _time(
            lambda: simulate_per_step(trace, dataset, problem, router, options),
            repeats,
        )
        runs[name] = {
            "batched_seconds": round(t_batched, 4),
            "per_step_seconds": round(t_reference, 4),
            "speedup": round(t_reference / t_batched, 2),
            "max_load_abs_err": max_err,
        }
        print(
            f"{name:24s} batched {t_batched:7.3f}s  per-step {t_reference:7.3f}s  "
            f"speedup {t_reference / t_batched:5.1f}x  max err {max_err:.2e}"
        )

    return {
        "benchmark": "sim.engine batched pipeline vs per-step reference",
        "generated_by": "benchmarks/bench_engine.py",
        "trace": {
            "kind": "hour-of-week hourly",
            "days": days,
            "n_steps": trace.n_steps,
            "n_states": trace.n_states,
            "n_clusters": problem.n_clusters,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "runs": runs,
        "profile": bench_profile(min(days, 60)),
        "kernel": bench_kernel(
            trace,
            dataset,
            problem,
            joint_router,
            SimulationOptions(bandwidth_caps=caps),
            repeats,
        ),
        "float32": bench_float32(
            trace,
            dataset,
            problem,
            joint_router,
            SimulationOptions(bandwidth_caps=caps),
            repeats,
        ),
        "provider": bench_provider(repeats),
        "sweep": bench_sweep(jobs=2),
        "campaign": bench_campaign(),
        "serve": bench_serve_section(quick=days < 365),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="60-day trace for CI smoke runs")
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats (median-of, after a warm-up)"
    )
    args = parser.parse_args()

    days = 60 if args.quick else 365
    record = bench(days, args.repeats)
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")

    for name in ("price_unconstrained", "joint_soft_objective"):
        if record["runs"][name]["max_load_abs_err"] > 1e-6:
            print(f"FAIL: batched pipeline diverged from the per-step reference ({name})")
            return 1
        if not args.quick and record["runs"][name]["speedup"] < 5.0:
            print(f"FAIL: {name} batched speedup below 5x")
            return 1
    if not record["sweep"]["serial_equals_parallel"]:
        print("FAIL: sweep results differ across serial / parallel / stacked paths")
        return 1
    if not record["campaign"]["identical"]:
        print("FAIL: streaming campaign pipeline diverged from the eager aggregate path")
        return 1
    for name, level in record["serve"]["levels"].items():
        if not level["allocations_identical"]:
            print(f"FAIL: served allocations diverged from the offline replay ({name})")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
