"""Bench: regenerate Fig. 10 (differential distributions, 5 pairs)."""

from benchmarks.conftest import run_once
from repro.experiments import fig10_differential_hist


def test_fig10_differential_hist(benchmark, warm):
    result = run_once(benchmark, fig10_differential_hist.run)
    print("\n" + result.to_text())
    rows = {row[0]: row for row in result.rows}
    # Zero-mean, high-variance, dynamically exploitable pairs.
    for pair in ("NP15-DOM", "ERCOT-S-DOM"):
        assert abs(rows[pair][1]) < 12.0
        assert rows[pair][3] > 35.0
    # Boston-NYC skewed toward Boston but NYC wins a meaningful share.
    bos = rows["MA-BOS-NYC"]
    assert bos[1] < -5.0
    assert 0.2 < bos[6] < 0.5
    # Chicago-Virginia one-sided.
    assert rows["CHI-DOM"][1] < -10.0
    # Market-boundary dispersion: CHI-IL near zero-mean with spread.
    assert abs(rows["CHI-IL"][1]) < 10.0
    assert rows["CHI-IL"][3] > 20.0
