"""Bench: regenerate Fig. 20 (cost of reacting late to prices)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig20_reaction_delay


def test_fig20_reaction_delay(benchmark, warm):
    result = run_once(benchmark, fig20_reaction_delay.run)
    print("\n" + result.to_text())
    delays = result.series["delays_hours"]
    increase = result.series["increase_pct"]

    # The initial jump: reacting an hour late already costs real money
    # relative to immediate reaction.
    one_hour = increase[np.flatnonzero(delays == 1)[0]]
    assert one_hour > 0.2

    # Cost increase grows from 0 through the first several hours.
    first_six = increase[delays <= 6]
    assert first_six[0] == 0.0
    assert np.all(np.diff(first_six) > -0.1)

    # The 24-hour local structure: reacting exactly a day late is no
    # worse than the surrounding plateau (day-to-day correlation).
    at_21 = increase[np.flatnonzero(delays == 21)[0]]
    at_24 = increase[np.flatnonzero(delays == 24)[0]]
    at_27 = increase[np.flatnonzero(delays == 27)[0]]
    assert at_24 <= max(at_21, at_27) + 0.05
