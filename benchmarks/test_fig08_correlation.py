"""Bench: regenerate Fig. 8 (correlation vs distance and RTO)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig08_correlation


def test_fig08_correlation(benchmark, warm):
    result = run_once(benchmark, fig08_correlation.run)
    print("\n" + result.to_text())
    rows = dict((r[0], r[1]) for r in result.rows)
    assert rows["total pairs"] == 406
    assert rows["same-RTO above 0.6"] >= 0.9
    assert rows["cross-RTO below 0.6"] == 1.0
    assert rows["LA/PaloAlto coefficient"] > 0.8
    assert rows["minimum coefficient"] > 0.0  # no negative pairs
    # Distance decay within the cross-RTO cloud.
    d = result.series["cross_rto_distance_km"]
    c = result.series["cross_rto_coefficient"]
    near = c[d < np.median(d)].mean()
    far = c[d >= np.median(d)].mean()
    assert near > far
