"""Bench: regenerate Fig. 1 (fleet electricity cost table)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig01_fleet_costs


def test_fig01_fleet_costs(benchmark):
    result = run_once(benchmark, fig01_fleet_costs.run)
    print("\n" + result.to_text())
    costs = {row[0]: row[3] for row in result.rows}
    # Paper's lower bounds: eBay ~$3.7M, Akamai ~$10M, Rackspace ~$12M,
    # Microsoft >$36M, Google >$38M.
    assert costs["eBay"] == pytest.approx(3.7, rel=0.25)
    assert costs["Akamai"] == pytest.approx(10.0, rel=0.25)
    assert costs["Rackspace"] == pytest.approx(12.0, rel=0.25)
    assert costs["Microsoft"] > 36.0
    assert costs["Google"] > 30.0
