"""Benchmark suite: one end-to-end bench per paper table/figure."""
