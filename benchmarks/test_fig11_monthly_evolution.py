"""Bench: regenerate Fig. 11 (monthly differential evolution)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig11_monthly_evolution


def test_fig11_monthly_evolution(benchmark, warm):
    result = run_once(benchmark, fig11_monthly_evolution.run)
    print("\n" + result.to_text())
    assert len(result.rows) == 39  # one row per month of the data set
    medians = result.series["monthly_median"]
    iqrs = result.series["monthly_iqr"]
    # Sustained asymmetries exist and reverse: both signs appear among
    # the monthly medians.
    assert np.any(medians > 1.0) and np.any(medians < -1.0)
    # The spread changes substantially month to month.
    assert np.max(iqrs) / np.min(iqrs) > 2.0
