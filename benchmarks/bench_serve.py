#!/usr/bin/env python3
"""Serving benchmark: sustained QPS and tail latency of ``/route``.

The engine benchmark measures trace throughput; this one measures the
online path a client actually experiences — request latency through
the asyncio server and micro-batcher under concurrent load. For each
concurrency level it boots a fresh :class:`RoutingServer` on an
ephemeral loopback port, drives closed-loop clients over keep-alive
connections until the request budget is spent, and records sustained
QPS plus p50/p95/p99 latency. Every level also replays its recorded
demand through an offline :class:`RoutingSession` and asserts the
served per-cluster loads match **bitwise** — load never changes a
routing decision.

Run:  PYTHONPATH=src python benchmarks/bench_serve.py [--quick]

Standalone runs print a table; ``bench_engine.py`` embeds the same
section into ``BENCH_engine.json``, where ``check_regression.py``
gates it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
from dataclasses import replace

import numpy as np

from repro import scenarios
from repro.serve import HttpClient, RoutingServer, ServerConfig
from repro.serve.shard import ShardedServer, reuse_port_supported

#: Concurrency levels: a lone client (pure latency), a small pool, and
#: a burst wide enough that the micro-batcher must coalesce.
CONCURRENCY_LEVELS = (1, 8, 32)

SCENARIO = "serve-smoke"
WINDOW_MS = 2.0
MAX_BATCH = 64

#: Worker processes for the sharded section. Whether sharding *helps*
#: depends on the box: with >= 2 idle cores the kernel spreads the
#: connections over genuinely parallel workers; on a single core the
#: shards time-slice and the section documents the (honest) overhead.
SHARD_WORKERS = 2
SHARD_CONCURRENCY = 32

#: The sharded workers serve *rolling* sessions (the registered
#: scenario's trace is only 288 steps; chained billing windows of one
#: trace-length each cover any request budget).
SHARD_ROLLING_WINDOW = 288


def _bench_scenario(n_steps: int):
    """The smoke scenario with its horizon stretched to the budget."""
    scenario = scenarios.get(SCENARIO)
    return scenario.derive(trace=replace(scenario.trace, n_steps=n_steps))


async def _run_level(scenario, rows: np.ndarray, concurrency: int) -> dict:
    n_requests = len(rows)
    session = scenarios.open_session(scenario, n_steps=n_requests)
    labels = session.cluster_labels
    server = RoutingServer(
        session,
        ServerConfig(
            host="127.0.0.1", port=0, window_ms=WINDOW_MS, max_batch=MAX_BATCH,
            scenario=SCENARIO,
        ),
    )
    await server.start()
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    demand_by_step = np.empty_like(rows)
    served_loads = np.empty((n_requests, len(labels)))
    try:
        # Production-shape clients: a small retry budget with seeded
        # jitter, so transient 429/503s are ridden out and the retry
        # count itself becomes a benchmark signal (healthy runs: 0).
        clients = [
            HttpClient("127.0.0.1", server.port, max_retries=3, retry_seed=c)
            for c in range(concurrency)
        ]
        for client in clients:
            await client.connect()
        try:

            async def worker(client: HttpClient, indices: range) -> None:
                for i in indices:
                    t0 = loop.time()
                    body = await client.route(rows[i].tolist())
                    latencies.append(loop.time() - t0)
                    step = body["step"]
                    demand_by_step[step] = rows[i]
                    served_loads[step] = [body["loads"][label] for label in labels]

            shares = [range(c, n_requests, concurrency) for c in range(concurrency)]
            t_start = loop.time()
            await asyncio.gather(*(worker(cl, sh) for cl, sh in zip(clients, shares)))
            wall = loop.time() - t_start
        finally:
            retries_total = sum(client.retries_total for client in clients)
            for client in clients:
                await client.close()
        stats = server.batcher.stats
        batch_mean = stats.batch_size_mean
        batch_max = stats.batch_size_max
    finally:
        await server.stop()

    # Bitwise identity: an offline session fed the same rows in step
    # order must produce exactly the loads the server returned.
    replay = scenarios.open_session(scenario, n_steps=n_requests)
    replay.feed(demand_by_step)
    identical = bool(np.array_equal(served_loads, replay.result().loads))

    lat_ms = np.asarray(latencies) * 1000.0
    return {
        "concurrency": concurrency,
        "requests": n_requests,
        "qps": round(n_requests / wall, 1),
        "p50_ms": round(float(np.percentile(lat_ms, 50)), 3),
        "p95_ms": round(float(np.percentile(lat_ms, 95)), 3),
        "p99_ms": round(float(np.percentile(lat_ms, 99)), 3),
        "batch_size_mean": round(batch_mean, 2),
        "batch_size_max": batch_max,
        "retries_total": retries_total,
        "allocations_identical": identical,
    }


async def _run_sharded(sharded: ShardedServer, rows: np.ndarray, concurrency: int) -> dict:
    """Closed-loop load against an already-started sharded deployment."""
    n_requests = len(rows)
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    responses: list[dict | None] = [None] * n_requests

    clients = [
        HttpClient("127.0.0.1", sharded.port, max_retries=3, retry_seed=c)
        for c in range(concurrency)
    ]
    for client in clients:
        await client.connect()
    try:

        async def worker(client: HttpClient, indices: range) -> None:
            for i in indices:
                t0 = loop.time()
                body = await client.route(rows[i].tolist())
                latencies.append(loop.time() - t0)
                responses[i] = body

        shares = [range(c, n_requests, concurrency) for c in range(concurrency)]
        t_start = loop.time()
        await asyncio.gather(*(worker(cl, sh) for cl, sh in zip(clients, shares)))
        wall = loop.time() - t_start
        _, stats = await clients[0].request("GET", "/stats")
    finally:
        retries_total = sum(client.retries_total for client in clients)
        for client in clients:
            await client.close()

    return {
        "wall": wall,
        "latencies": latencies,
        "responses": responses,
        "stats": stats,
        "retries_total": retries_total,
    }


def bench_serve_sharded(rows: np.ndarray) -> dict:
    """The sharded leg: SHARD_WORKERS processes, one port, c32 load."""
    if not reuse_port_supported():
        return {"skipped": "platform lacks SO_REUSEPORT"}

    n_requests = len(rows)
    with ShardedServer(
        SCENARIO,
        workers=SHARD_WORKERS,
        window_ms=WINDOW_MS,
        max_batch=MAX_BATCH,
        rolling_window=SHARD_ROLLING_WINDOW,
    ) as sharded:
        out = asyncio.run(_run_sharded(sharded, rows, SHARD_CONCURRENCY))

    # Per-shard bitwise identity: each shard is its own rolling
    # session, so replay each shard's rows (in that shard's step
    # order) through an identical offline roller.
    identical = True
    per_shard: dict[int, list[tuple[int, int]]] = {}
    for i, body in enumerate(out["responses"]):
        per_shard.setdefault(body["shard"], []).append((body["step"], i))
    for members in per_shard.values():
        members.sort()
        replay = scenarios.open_rolling_session(
            scenarios.get(SCENARIO), window_steps=SHARD_ROLLING_WINDOW
        )
        allocations = replay.feed(np.stack([rows[i] for _, i in members]))
        served = np.array(
            [
                [out["responses"][i]["loads"][label] for label in replay.cluster_labels]
                for _, i in members
            ]
        )
        identical = identical and bool(np.array_equal(served, allocations.sum(axis=1)))

    lat_ms = np.asarray(out["latencies"]) * 1000.0
    aggregate = out["stats"]["shards"]
    return {
        "workers": SHARD_WORKERS,
        "concurrency": SHARD_CONCURRENCY,
        "requests": n_requests,
        "qps": round(n_requests / out["wall"], 1),
        "p50_ms": round(float(np.percentile(lat_ms, 50)), 3),
        "p95_ms": round(float(np.percentile(lat_ms, 95)), 3),
        "p99_ms": round(float(np.percentile(lat_ms, 99)), 3),
        "shards_hit": sorted(per_shard),
        "batch_size_mean": round(
            aggregate["batch_rows_total"] / max(aggregate["batches_total"], 1), 2
        ),
        "retries_total": out["retries_total"],
        "restarts_total": aggregate.get("restarts_total", 0),
        "allocations_identical": identical,
    }


def bench_serve(requests_per_level: int = 2000) -> dict:
    """The ``serve`` section of the benchmark record."""
    scenario = _bench_scenario(
        max(requests_per_level, 288)
    )  # one horizon per level; sized to the budget
    grid = scenarios.trace(scenario.trace, scenario.market)
    rows = grid.demand[:requests_per_level]

    levels = {}
    for concurrency in CONCURRENCY_LEVELS:
        level = asyncio.run(_run_level(scenario, rows, concurrency))
        levels[f"c{concurrency}"] = level
        print(
            f"{'serve:c' + str(concurrency):24s} qps {level['qps']:8.1f}  "
            f"p50 {level['p50_ms']:7.2f}ms  p95 {level['p95_ms']:7.2f}ms  "
            f"p99 {level['p99_ms']:7.2f}ms  batch mean {level['batch_size_mean']:5.2f}  "
            f"retries {level['retries_total']}  "
            f"identical {level['allocations_identical']}"
        )

    sharded = bench_serve_sharded(rows)
    if "skipped" in sharded:
        print(f"{'serve:sharded':24s} skipped ({sharded['skipped']})")
    else:
        print(
            f"{'serve:sharded':24s} qps {sharded['qps']:8.1f}  "
            f"p50 {sharded['p50_ms']:7.2f}ms  p95 {sharded['p95_ms']:7.2f}ms  "
            f"p99 {sharded['p99_ms']:7.2f}ms  workers {sharded['workers']}  "
            f"retries {sharded['retries_total']}  "
            f"identical {sharded['allocations_identical']}"
        )

    return {
        "scenario": SCENARIO,
        "router": scenarios.get(SCENARIO).router.kind,
        "window_ms": WINDOW_MS,
        "max_batch": MAX_BATCH,
        "requests_per_level": requests_per_level,
        "cpu_count": os.cpu_count(),
        "levels": levels,
        "sharded": sharded,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small request budget for CI")
    parser.add_argument("--output", default=None, help="write the section to a JSON file")
    args = parser.parse_args()

    section = bench_serve(requests_per_level=400 if args.quick else 2000)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(section, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.output}")
    for level in section["levels"].values():
        if not level["allocations_identical"]:
            print("FAIL: served allocations diverged from the offline replay")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
