"""Bench: regenerate Fig. 15 (savings vs energy elasticity, +/- 95/5).

The paper's headline figure: savings hinge on energy elasticity, and
95/5 constraints cut but do not eliminate them.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig15_elasticity_savings


def test_fig15_elasticity_savings(benchmark, warm):
    result = run_once(benchmark, fig15_elasticity_savings.run)
    print("\n" + result.to_text())
    relaxed = [row[1] for row in result.rows]
    followed = [row[3] for row in result.rows]

    # Savings decrease monotonically as elasticity worsens down the
    # Fig. 15 x-axis.
    assert relaxed == sorted(relaxed, reverse=True)
    assert followed == sorted(followed, reverse=True)

    # Fully elastic systems save tens of percent; disabled power
    # management saves essentially nothing.
    assert relaxed[0] > 20.0
    assert relaxed[-1] < 5.0

    # Following 95/5 cuts savings substantially but not to zero
    # (paper: "down to about a third of their earlier values").
    for rel, fol in zip(relaxed, followed):
        if rel > 1.0:
            assert 0.0 < fol < rel
    assert followed[0] / relaxed[0] < 0.75

    # Google-like elasticity (65% idle, 1.3 PUE): low-single-digit
    # savings (paper: ~5% relaxed, ~2% followed).
    google_row = next(r for r in result.rows if r[0] == "(65% idle, 1.3 PUE)")
    assert 1.0 < google_row[1] < 12.0
    assert 0.2 < google_row[3] < 6.0
