"""Bench: regenerate Fig. 19 (per-cluster cost change)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig19_per_cluster


def test_fig19_per_cluster(benchmark, warm):
    result = run_once(benchmark, fig19_per_cluster.run)
    print("\n" + result.to_text())
    labels = result.notes[0].split(": ")[1].split(", ")
    ny = labels.index("NY")
    for name, delta in result.series.items():
        # Net system saving at every threshold.
        assert delta.sum() < 0.0, name
        # NYC (highest peak prices) among the biggest reductions.
        assert delta[ny] <= np.partition(delta, 2)[2] + 1e-9, name
    # Savings deepen with the threshold.
    totals = [result.series[k].sum() for k in sorted(result.series)]
    assert min(totals) < -0.01
