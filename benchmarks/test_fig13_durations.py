"""Bench: regenerate Fig. 13 (differential durations)."""

from benchmarks.conftest import run_once
from repro.experiments import fig13_durations


def test_fig13_durations(benchmark, warm):
    result = run_once(benchmark, fig13_durations.run)
    print("\n" + result.to_text())
    hist = result.series["duration_fraction"]
    # Short differentials (<3 h) are more frequent than any other band;
    # medium (<9 h) common; day-plus rare for this balanced pair.
    assert hist[:3].sum() > hist[3:9].sum() * 0.5
    assert hist[:9].sum() > hist[9:].sum()
    assert hist[24:].sum() < 0.15
