"""Legacy setup shim.

The offline evaluation environment lacks the `wheel` package that
PEP 660 editable installs require; `python setup.py develop` (and
therefore `pip install -e . --no-build-isolation`) works without it.
Configuration — including the `repro` console entry point — lives in
pyproject.toml.
"""

from setuptools import setup

setup()
