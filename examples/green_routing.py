#!/usr/bin/env python3
"""Green routing: the paper's §8 future-work directions, working.

Compares three objective functions on the same trace:

* dollars   — the paper's price-conscious optimizer,
* carbon    — route to the cleanest grid region each hour,
* weather   — route on cooling-adjusted effective prices.

Reports cost, carbon, and distance for each, showing the trade-off
surface the paper sketches ("a socially responsible service operator
may instead choose an environmental impact cost function"). The
carbon- and weather-aware runs come straight from the registered
``green-routing`` and ``weather-routing`` scenarios; the dollar run
derives from the same market and trace with a plain price router.

Run:  python examples/green_routing.py
"""

from __future__ import annotations

import numpy as np

from repro import scenarios
from repro.analysis import render_table
from repro.energy import OPTIMISTIC_FUTURE
from repro.ext import carbon_intensity_matrix, hourly_signal_rows
from repro.scenarios import RouterSpec


def main() -> None:
    print("setting up market, intensity fields, and trace...")
    green = scenarios.get("green-routing")
    dataset = scenarios.dataset(green.market)
    trace = scenarios.trace(green.trace, green.market)
    deployment = scenarios.problem().deployment

    runs = {
        "baseline (proximity)": scenarios.baseline_result(green.market, green.trace),
        "dollars (price-aware)": scenarios.run(
            green.derive(router=RouterSpec.of("price", distance_threshold_km=1500.0))
        ),
        "carbon-aware": scenarios.run(green),
        "weather-aware": scenarios.run(scenarios.get("weather-routing")),
    }

    carbon_rows = hourly_signal_rows(carbon_intensity_matrix(dataset), dataset, deployment, trace)

    rows = []
    params = OPTIMISTIC_FUTURE
    for name, result in runs.items():
        energy = result.energy_mwh(params)
        tonnes = float(np.sum(energy * carbon_rows) / 1000.0)
        rows.append(
            (
                name,
                round(result.total_cost(params), 0),
                round(tonnes, 0),
                round(result.mean_distance_km, 0),
            )
        )
    print()
    print(
        render_table(
            ("Objective", "Cost ($)", "CO2 (t)", "Mean dist (km)"),
            rows,
            title="Objective functions compared, 24-day trace",
        )
    )

    base = runs["baseline (proximity)"]
    dollars = runs["dollars (price-aware)"]
    print()
    print(f"price-aware saves {dollars.savings_vs(base, params):.1%} in dollars;")
    print("carbon-aware should show the lowest CO2 column;")
    print("weather-aware sits between, chasing cheap *and* cold air.")


if __name__ == "__main__":
    main()
