#!/usr/bin/env python3
"""Green routing: the paper's §8 future-work directions, working.

Compares three objective functions on the same trace:

* dollars   — the paper's price-conscious optimizer,
* carbon    — route to the cleanest grid region each hour,
* weather   — route on cooling-adjusted effective prices.

Reports cost, carbon, and distance for each, showing the trade-off
surface the paper sketches ("a socially responsible service operator
may instead choose an environmental impact cost function").

Run:  python examples/green_routing.py
"""

from __future__ import annotations

from datetime import datetime

import numpy as np

from repro.analysis import render_table
from repro.energy import OPTIMISTIC_FUTURE
from repro.ext import (
    CarbonConsciousRouter,
    carbon_intensity_matrix,
    effective_price_matrix,
)
from repro.markets import MarketConfig, generate_market
from repro.routing import BaselineProximityRouter, PriceConsciousRouter, RoutingProblem
from repro.sim import simulate
from repro.traffic import TraceConfig, akamai_like_deployment, make_trace


class MatrixRouter:
    """Adapter: run a price-style router against any hourly cost matrix."""

    def __init__(self, inner, matrix, dataset, deployment, trace):
        from repro.sim.engine import _hour_indices

        self._inner = inner
        hub_cols = [dataset.hub_column(code) for code in deployment.hub_codes]
        self._signal = matrix[:, hub_cols]
        self._hours = _hour_indices(trace, dataset)
        self._t = 0

    def allocate(self, demand, prices, limits):
        # Ignore the engine-provided prices; substitute our signal for
        # the same step (engine steps sequentially).
        row = self._signal[self._hours[self._t]]
        self._t += 1
        return self._inner.allocate(demand, row, limits)


def main() -> None:
    print("setting up market, intensity fields, and trace...")
    dataset = generate_market(
        MarketConfig(start=datetime(2008, 11, 1), months=4, seed=21)
    )
    trace = make_trace(TraceConfig(start=datetime(2008, 12, 16), seed=21))
    problem = RoutingProblem(akamai_like_deployment())
    deployment = problem.deployment

    carbon = carbon_intensity_matrix(dataset)
    cooling_adjusted = effective_price_matrix(dataset)

    routers = {
        "baseline (proximity)": BaselineProximityRouter(problem),
        "dollars (price-aware)": PriceConsciousRouter(problem, 1500.0),
        "carbon-aware": MatrixRouter(
            CarbonConsciousRouter(problem, 1500.0), carbon, dataset, deployment, trace
        ),
        "weather-aware": MatrixRouter(
            PriceConsciousRouter(problem, 1500.0),
            cooling_adjusted, dataset, deployment, trace,
        ),
    }

    hub_cols = [dataset.hub_column(code) for code in deployment.hub_codes]
    from repro.sim.engine import _hour_indices

    hours = _hour_indices(trace, dataset)
    carbon_rows = carbon[:, hub_cols][hours]

    rows = []
    params = OPTIMISTIC_FUTURE
    results = {}
    for name, router in routers.items():
        result = simulate(trace, dataset, problem, router)
        results[name] = result
        energy = result.energy_mwh(params)
        tonnes = float(np.sum(energy * carbon_rows) / 1000.0)
        rows.append(
            (
                name,
                round(result.total_cost(params), 0),
                round(tonnes, 0),
                round(result.mean_distance_km, 0),
            )
        )
    print()
    print(render_table(
        ("Objective", "Cost ($)", "CO2 (t)", "Mean dist (km)"),
        rows, title="Objective functions compared, 24-day trace"))

    base = results["baseline (proximity)"]
    dollars = results["dollars (price-aware)"]
    print()
    print(f"price-aware saves {dollars.savings_vs(base, params):.1%} in dollars;")
    print("carbon-aware should show the lowest CO2 column;")
    print("weather-aware sits between, chasing cheap *and* cold air.")


if __name__ == "__main__":
    main()
