#!/usr/bin/env python3
"""Billing structures: which contracts let routing savings through (§7).

Runs baseline and price-aware routing once (scenario derivations over
a compact four-month market), then prices the identical consumption
under four contract structures: wholesale-indexed (ComEd RTP style), a
70%-hedged blend, a fixed-price deal, and co-location
provisioned-capacity billing. §7's point, in numbers: the savings the
simulator projects only reach the operator whose bill actually indexes
to hourly wholesale prices.

Run:  python examples/billing_structures.py
"""

from __future__ import annotations

from datetime import datetime

from repro import scenarios
from repro.analysis import render_table
from repro.energy import OPTIMISTIC_FUTURE
from repro.ext import compare_plans
from repro.scenarios import MarketSpec, TraceSpec


def main() -> None:
    print("simulating baseline vs price-aware routing...")
    scenario = scenarios.get("paper-default").derive(
        market=MarketSpec(start=datetime(2008, 10, 1), months=4, seed=17),
        trace=TraceSpec(kind="turn-of-year", seed=17),
    )
    baseline = scenarios.baseline_result(scenario.market, scenario.trace)
    priced = scenarios.run(scenario)

    rows = compare_plans(baseline, priced, OPTIMISTIC_FUTURE)
    table = [
        (
            r["plan"],
            round(r["baseline_bill"], 0),
            round(r["priced_bill"], 0),
            f"{r['savings_fraction']:.1%}",
        )
        for r in rows
    ]
    print()
    print(
        render_table(
            ("Billing plan", "Baseline bill ($)", "Price-aware bill ($)", "Savings"),
            table,
            title="Routing savings under different contracts (24 days)",
        )
    )
    print()
    print("wholesale-indexed plans pass the full opportunity through;")
    print("hedged blends keep a fraction; fixed-price and provisioned-")
    print("capacity contracts (today's co-location norm) keep none —")
    print("which is why §7 expects contracts to evolve as energy costs rise.")


if __name__ == "__main__":
    main()
