#!/usr/bin/env python3
"""Market analysis: reproduce the paper's §3 empirical findings.

Walks the generated 39-month price data set through the analyses
behind Figs. 5-13: per-hub statistics, geographic correlation
structure, differential distributions, hour-of-day effects, and
sustained-differential durations.

Run:  python examples/market_analysis.py            (full 39 months)
      python examples/market_analysis.py --fast     (12 months)
"""

from __future__ import annotations

import sys

import numpy as np

from repro import scenarios
from repro.analysis import (
    correlation_summary,
    differential_durations,
    differential_stats,
    favourable_fractions,
    hour_of_day_profile,
    pairwise_correlations,
    render_table,
)
from repro.scenarios import MarketSpec


def main() -> None:
    months = 12 if "--fast" in sys.argv else 39
    print(f"generating {months} months of hourly prices for 29 hubs...")
    dataset = scenarios.dataset(MarketSpec(months=months, seed=2009))

    # Fig. 6: robust per-hub statistics.
    rows = []
    for code in ("CHI", "CINERGY", "NP15", "DOM", "MA-BOS", "NYC"):
        stats = dataset.real_time(code).stats()
        rows.append((code, round(stats.mean, 1), round(stats.std, 1), round(stats.kurtosis, 1)))
    print()
    print(
        render_table(
            ("Hub", "Mean", "StDev", "Kurtosis"),
            rows,
            title="Trimmed hourly price statistics (Fig. 6 analogue)",
        )
    )

    # Fig. 8: correlation structure.
    pairs = pairwise_correlations(dataset)
    summary = correlation_summary(pairs)
    print()
    print("correlation structure (Fig. 8 analogue):")
    print(f"  {int(summary['n_pairs'])} pairs; same-RTO above 0.6: "
          f"{summary['same_rto_above_line']:.0%}; cross-RTO below 0.6: "
          f"{summary['cross_rto_below_line']:.0%}")
    print(f"  medians: same-RTO {summary['same_rto_median']:.2f}, "
          f"cross-RTO {summary['cross_rto_median']:.2f}")

    # Fig. 10: differential taxonomy.
    print()
    rows = []
    for a, b in (("NP15", "DOM"), ("MA-BOS", "NYC"), ("CHI", "DOM")):
        diff = dataset.real_time(a) - dataset.real_time(b)
        stats = differential_stats(diff)
        frac = favourable_fractions(diff)
        rows.append(
            (
                f"{a}-{b}",
                round(stats.mean, 1),
                round(stats.std, 1),
                round(frac["b_cheaper"], 2),
                round(frac["b_saves_over_threshold"], 2),
            )
        )
    print(
        render_table(
            ("Pair", "Mean", "StDev", "P(B cheaper)", "P(save > $10)"),
            rows,
            title="Differential distributions (Fig. 10 analogue)",
        )
    )

    # Fig. 12: hour-of-day structure for the coast-to-coast pair.
    diff = dataset.real_time("NP15") - dataset.real_time("DOM")
    profile = hour_of_day_profile(diff)
    medians = np.array([p["median"] for p in profile])
    print()
    print("NP15-DOM median differential by hour (EST):")
    print("  " + " ".join(f"{m:+.0f}" for m in medians))
    print(f"  swing: {medians.max() - medians.min():.0f} $/MWh "
          "(time-zone offset of demand peaks)")

    # Fig. 13: durations.
    durations = differential_durations(diff, threshold=5.0)
    arr = np.array(durations)
    print()
    print(f"sustained differentials (>|$5|): n={arr.size}, "
          f"median {np.median(arr):.0f} h, "
          f"share lasting <3 h: {np.mean(arr < 3):.0%}, "
          f">24 h: {np.mean(arr > 24):.1%}")


if __name__ == "__main__":
    main()
