#!/usr/bin/env python3
"""Demand response: selling load flexibility back to the grid (§7).

A geo-distributed operator can enrol clusters in triggered
demand-response programs: when a hub's price spikes past the stress
threshold, the cluster sheds load (requests reroute elsewhere) and the
operator is paid for the negawatts. This example estimates that
revenue stream on top of the registered ``demand-response`` scenario
(a 90-day baseline routing run).

Run:  python examples/demand_response.py
"""

from __future__ import annotations

from repro import scenarios
from repro.analysis import render_table
from repro.energy import GOOGLE_LIKE
from repro.ext import DemandResponseProgram, evaluate_demand_response


def main() -> None:
    print("simulating a quarter of operation...")
    result = scenarios.run(scenarios.get("demand-response"))

    program = DemandResponseProgram(
        trigger_price=150.0,
        compensation_per_mwh=200.0,
        max_events_per_cluster=20,
    )
    outcome = evaluate_demand_response(result, GOOGLE_LIKE, program)

    per_cluster: dict[str, tuple[int, float, float]] = {}
    for event in outcome.events:
        n, mwh, rev = per_cluster.get(event.cluster_label, (0, 0.0, 0.0))
        per_cluster[event.cluster_label] = (n + 1, mwh + event.curtailed_mwh, rev + event.revenue)

    rows = [
        (label, n, round(mwh, 1), round(rev, 0))
        for label, (n, mwh, rev) in sorted(per_cluster.items())
    ]
    print()
    print(
        render_table(
            ("Cluster", "Events", "Curtailed MWh", "Revenue ($)"),
            rows,
            title="Demand-response participation, 90 days",
        )
    )
    print()
    electricity_cost = result.total_cost(GOOGLE_LIKE)
    print(f"events: {outcome.n_events}; total curtailed "
          f"{outcome.total_curtailed_mwh:.0f} MWh; revenue ${outcome.total_revenue:,.0f}")
    print(f"for scale: the 90-day electricity bill is ${electricity_cost:,.0f}, "
          f"so flexibility adds {outcome.total_revenue / electricity_cost:.1%} back")
    print("(§7: the barriers to entry are low — a few racks per location "
          "suffice to construct a multi-market demand-response system)")


if __name__ == "__main__":
    main()
