#!/usr/bin/env python3
"""Quickstart: price-aware routing end to end in under a minute.

Runs the registered ``quickstart`` scenario — a compact synthetic
market (6 months, 29 hubs) and a 24-day CDN trace — against the
price-blind baseline and the paper's price-conscious optimizer, and
prints the electricity-cost comparison under two energy models.
Everything is wired through the scenario registry; the script only
says *which* runs it wants.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import scenarios
from repro.energy import GOOGLE_LIKE, OPTIMISTIC_FUTURE


def main() -> None:
    scenario = scenarios.get("quickstart")
    print("generating 6 months of wholesale prices for 29 hubs...")
    dataset = scenarios.dataset(scenario.market)
    print(f"  cheapest hub on average: {dataset.cheapest_hub()}")

    print("generating a 24-day five-minute CDN trace...")
    trace = scenarios.trace(scenario.trace, scenario.market)
    print(f"  {trace.n_steps} samples, US peak {trace.peak_us / 1e6:.2f} M hits/s")

    print("routing with the price-blind baseline...")
    baseline = scenarios.baseline_result(scenario.market, scenario.trace)

    print("routing with the price-conscious optimizer (1500 km threshold)...")
    relaxed = scenarios.run(scenario)
    followed = scenarios.run(scenario.derive(follow_95_5=True))

    print()
    print(f"{'energy model':28s} {'baseline $':>12s} {'priced $':>12s} "
          f"{'savings':>8s} {'w/ 95-5':>8s}")
    for name, params in (
        ("future (0% idle, 1.1 PUE)", OPTIMISTIC_FUTURE),
        ("google (65% idle, 1.3 PUE)", GOOGLE_LIKE),
    ):
        base_cost = baseline.total_cost(params)
        priced_cost = relaxed.total_cost(params)
        print(
            f"{name:28s} {base_cost:12,.0f} {priced_cost:12,.0f} "
            f"{relaxed.savings_vs(baseline, params):8.1%} "
            f"{followed.savings_vs(baseline, params):8.1%}"
        )
    print()
    print(
        f"mean client-server distance: baseline {baseline.mean_distance_km:.0f} km, "
        f"price-aware {relaxed.mean_distance_km:.0f} km "
        f"(p99 {relaxed.distance_percentile_km(99):.0f} km)"
    )


if __name__ == "__main__":
    main()
