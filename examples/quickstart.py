#!/usr/bin/env python3
"""Quickstart: price-aware routing end to end in under a minute.

Generates a compact synthetic market (6 months, 29 hubs), a 24-day
CDN trace, routes it with the price-blind baseline and the paper's
price-conscious optimizer, and prints the electricity-cost comparison
under two energy models.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from datetime import datetime

from repro.energy import GOOGLE_LIKE, OPTIMISTIC_FUTURE
from repro.markets import MarketConfig, generate_market
from repro.routing import BaselineProximityRouter, PriceConsciousRouter, RoutingProblem
from repro.sim import SimulationOptions, simulate
from repro.traffic import TraceConfig, akamai_like_deployment, make_trace


def main() -> None:
    print("generating 6 months of wholesale prices for 29 hubs...")
    dataset = generate_market(
        MarketConfig(start=datetime(2008, 10, 1), months=6, seed=7)
    )
    print(f"  cheapest hub on average: {dataset.cheapest_hub()}")

    print("generating a 24-day five-minute CDN trace...")
    trace = make_trace(TraceConfig(start=datetime(2008, 12, 16), seed=7))
    print(f"  {trace.n_steps} samples, US peak {trace.peak_us / 1e6:.2f} M hits/s")

    problem = RoutingProblem(akamai_like_deployment())
    print("routing with the price-blind baseline...")
    baseline = simulate(trace, dataset, problem, BaselineProximityRouter(problem))

    print("routing with the price-conscious optimizer (1500 km threshold)...")
    router = PriceConsciousRouter(problem, distance_threshold_km=1500.0)
    relaxed = simulate(trace, dataset, problem, router)
    followed = simulate(
        trace,
        dataset,
        problem,
        router,
        SimulationOptions(bandwidth_caps=baseline.percentiles_95()),
    )

    print()
    print(f"{'energy model':28s} {'baseline $':>12s} {'priced $':>12s} "
          f"{'savings':>8s} {'w/ 95-5':>8s}")
    for name, params in (
        ("future (0% idle, 1.1 PUE)", OPTIMISTIC_FUTURE),
        ("google (65% idle, 1.3 PUE)", GOOGLE_LIKE),
    ):
        base_cost = baseline.total_cost(params)
        priced_cost = relaxed.total_cost(params)
        print(
            f"{name:28s} {base_cost:12,.0f} {priced_cost:12,.0f} "
            f"{relaxed.savings_vs(baseline, params):8.1%} "
            f"{followed.savings_vs(baseline, params):8.1%}"
        )
    print()
    print(
        f"mean client-server distance: baseline {baseline.mean_distance_km:.0f} km, "
        f"price-aware {relaxed.mean_distance_km:.0f} km "
        f"(p99 {relaxed.distance_percentile_km(99):.0f} km)"
    )


if __name__ == "__main__":
    main()
