#!/usr/bin/env python3
"""Savings study: elasticity, distance thresholds, and 95/5 constraints.

The §6.2 experiment at example scale: sweep the price optimizer's
distance threshold over a 24-day trace, cost every run under the
Fig. 15 energy models, and show how elasticity and bandwidth
constraints gate the achievable savings. Every run is a derivation of
the registered ``price-optimizer-sweep`` scenario pointed at a
compact four-month market.

Run:  python examples/savings_study.py
"""

from __future__ import annotations

from datetime import datetime

from repro import scenarios
from repro.analysis import render_table
from repro.energy import FIG15_MODELS, OPTIMISTIC_FUTURE
from repro.scenarios import MarketSpec, TraceSpec


def main() -> None:
    print("setting up market, trace, and deployment...")
    sweep = scenarios.get("price-optimizer-sweep").derive(
        market=MarketSpec(start=datetime(2008, 11, 1), months=4, seed=11),
        trace=TraceSpec(kind="turn-of-year", seed=11),
    )
    baseline = scenarios.baseline_result(sweep.market, sweep.trace)

    # Sweep thresholds once; cost under every model afterwards.
    thresholds = (0.0, 500.0, 1000.0, 1500.0, 2500.0)
    runs = {}
    for threshold in thresholds:
        point = sweep.with_router(distance_threshold_km=threshold)
        runs[threshold, False] = scenarios.run(point)
        runs[threshold, True] = scenarios.run(point.derive(follow_95_5=True))
        print(f"  simulated threshold {threshold:.0f} km")

    print()
    rows = []
    for params in FIG15_MODELS:
        relaxed = runs[1500.0, False].savings_vs(baseline, params)
        followed = runs[1500.0, True].savings_vs(baseline, params)
        rows.append((params.describe(), round(relaxed * 100, 1), round(followed * 100, 1)))
    print(
        render_table(
            ("Energy model", "Relax 95/5 (%)", "Follow 95/5 (%)"),
            rows,
            title="Savings at 1500 km by energy elasticity (Fig. 15 analogue)",
        )
    )

    print()
    rows = []
    for threshold in thresholds:
        relaxed = runs[threshold, False]
        followed = runs[threshold, True]
        rows.append(
            (
                int(threshold),
                round(relaxed.normalized_cost(baseline, OPTIMISTIC_FUTURE), 3),
                round(followed.normalized_cost(baseline, OPTIMISTIC_FUTURE), 3),
                round(relaxed.mean_distance_km, 0),
                round(relaxed.distance_percentile_km(99), 0),
            )
        )
    print(
        render_table(
            ("Threshold km", "Cost (relax)", "Cost (follow)", "Mean dist km", "p99 dist km"),
            rows,
            title="Cost and distance vs threshold (Figs. 16/17 analogue)",
        )
    )

    print()
    print("reading: savings rise with elasticity and threshold;")
    print("95/5 constraints cut savings but never below zero;")
    print("distance is the currency that buys the discount.")


if __name__ == "__main__":
    main()
